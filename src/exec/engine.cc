#include "engine.hh"

#include <algorithm>
#include <cstring>

#include "obs/recorder.hh"
#include "sim/debug.hh"

namespace scmp
{

namespace
{

/**
 * Thrown by the engine when a doomed transaction is detected and
 * caught by Engine::transaction's retry loop on the same fiber
 * stack — the unwind IS the rollback to the tm_begin checkpoint:
 * the body's locals die with the stack frames, the deferred host
 * writes are discarded, and the loop re-runs the body.
 */
struct TmAbortUnwind
{
};

} // namespace

Engine::Engine(MemorySystem *mem, Arena *arena, EngineOptions options)
    : _mem(mem), _arena(arena), _options(options)
{
    panic_if(!mem, "engine needs a memory system");
    panic_if(!arena, "engine needs an arena");
}

Engine::~Engine() = default;

ThreadId
Engine::spawn(CpuId cpu, std::function<void(ThreadCtx &)> fn)
{
    panic_if(_running, "spawn while the engine is running");
    auto thread = std::make_unique<Thread>();
    Thread *t = thread.get();
    t->tid = (ThreadId)_threads.size();
    t->cpu = cpu;
    t->fn = std::move(fn);
    t->fiber = std::make_unique<Fiber>(
        [this, t]() {
            ThreadCtx ctx(*this, t, t->tid, *_arena);
            t->fn(ctx);
        },
        _options.stackBytes);
    _threads.push_back(std::move(thread));
    return t->tid;
}

Engine::Thread &
Engine::threadRef(ThreadId tid)
{
    panic_if(tid < 0 || tid >= (ThreadId)_threads.size(),
             "bad thread id ", tid);
    return *_threads[(std::size_t)tid];
}

const Engine::Thread &
Engine::threadRef(ThreadId tid) const
{
    panic_if(tid < 0 || tid >= (ThreadId)_threads.size(),
             "bad thread id ", tid);
    return *_threads[(std::size_t)tid];
}

Cycle
Engine::timeOf(ThreadId tid) const
{
    return threadRef(tid).time;
}

CpuId
Engine::cpuOf(ThreadId tid) const
{
    return threadRef(tid).cpu;
}

bool
Engine::done(ThreadId tid) const
{
    return threadRef(tid).state == State::Done;
}

bool
Engine::blocked(ThreadId tid) const
{
    return threadRef(tid).state == State::Blocked;
}

const ThreadStats &
Engine::statsOf(ThreadId tid) const
{
    return threadRef(tid).stats;
}

std::uint64_t
Engine::totalInstructions() const
{
    std::uint64_t total = 0;
    for (const auto &t : _threads)
        total += t->stats.instructions;
    return total;
}

void
Engine::blockThread(ThreadId tid)
{
    Thread &t = threadRef(tid);
    panic_if(t.state == State::Done, "blocking a finished thread");
    t.state = State::Blocked;
    // The heap entry goes stale and is discarded when popped.
    invalidateMinOtherCache();
}

void
Engine::wakeThread(ThreadId tid, Cycle atTime)
{
    Thread &t = threadRef(tid);
    panic_if(t.state == State::Done, "waking a finished thread");
    t.state = State::Ready;
    t.time = std::max(t.time, atTime);
    if (_running && &t != _current)
        pushReady(t);
    invalidateMinOtherCache();
}

void
Engine::bindCpu(ThreadId tid, CpuId cpu)
{
    threadRef(tid).cpu = cpu;
}

void
Engine::setTime(ThreadId tid, Cycle time)
{
    Thread &t = threadRef(tid);
    t.time = time;
    if (_running && &t != _current && t.state == State::Ready)
        pushReady(t);
    invalidateMinOtherCache();
}

void
Engine::pushReady(const Thread &t)
{
    _ready.push(ReadyEntry{t.time, t.tid});
}

void
Engine::seedMinOther()
{
    // Discard stale tops so the heap top is the smallest live
    // (time, tid) among Ready threads other than the one about to
    // run. A still-valid duplicate of the running thread is safe to
    // consume here: it re-enters the heap when it yields.
    while (!_ready.empty()) {
        const ReadyEntry &e = _ready.top();
        const Thread &t = *_threads[(std::size_t)e.tid];
        if (t.state != State::Ready || t.time != e.time ||
            &t == _current) {
            _ready.pop();
            continue;
        }
        break;
    }
    _minOtherFound = !_ready.empty();
    _minOtherTime = _minOtherFound ? _ready.top().time : 0;
    _minOtherTid = _minOtherFound ? _ready.top().tid : -1;
    _minOtherValid = true;
}

void
Engine::run()
{
    panic_if(_running, "engine.run() is not re-entrant");
    panic_if(_threads.empty(), "engine.run() with no threads");
    _running = true;

    // (Re)build the dispatch heap from scratch.
    _ready = decltype(_ready)();
    _live = 0;
    for (const auto &t : _threads) {
        if (t->state == State::Done)
            continue;
        ++_live;
        if (t->state == State::Ready)
            pushReady(*t);
    }

    if (_policy)
        _policy->onStart(*this);

    for (;;) {
        // Pick the runnable thread with the smallest (time, tid).
        // Popped entries that no longer match a thread's live state
        // are leftovers from a block/wake/setTime and are skipped.
        Thread *next = nullptr;
        while (!_ready.empty()) {
            ReadyEntry e = _ready.top();
            _ready.pop();
            Thread &t = *_threads[(std::size_t)e.tid];
            if (t.state != State::Ready || t.time != e.time)
                continue;
            next = &t;
            break;
        }
        if (!next) {
            panic_if(_live > 0,
                     "deadlock: live threads but none runnable");
            break;
        }

        _current = next;
        seedMinOther();
        Cycle sliceStart = next->time;
        if (_recorder)
            _recorder->tick(sliceStart);
        next->fiber->resume();
        _current = nullptr;

        if (next->fiber->finished()) {
            DPRINTF(Exec, "thread ", next->tid, " finished @",
                    next->time);
            next->state = State::Done;
            --_live;
            flushWork(*next);
            // A finishing thread drains its store buffer so its
            // last writes are globally performed by finishTime
            // (no-op under sequential consistency).
            next->time = _mem->fence(next->cpu, next->time);
            next->stats.finishTime = next->time;
            _finishTime = std::max(_finishTime, next->time);
            if (_policy)
                _policy->onThreadDone(*this, next->tid);
        } else if (next->state == State::Ready) {
            pushReady(*next);
        }
        if (_recorder)
            _recorder->threadSlice(next->tid, sliceStart,
                                   next->time);
    }
    _running = false;
}

void
Engine::flushWork(Thread &t)
{
    if (t.pendingWork) {
        t.time += t.pendingWork;
        t.stats.instructions += t.pendingWork;
        t.pendingWork = 0;
    }
}

bool
Engine::minOtherReadyTime(const Thread &self, Cycle &minTime) const
{
    if (&self == _current && _minOtherValid) {
        minTime = _minOtherTime;
        return _minOtherFound;
    }
    bool found = false;
    ThreadId minTid = -1;
    for (const auto &t : _threads) {
        if (t.get() == &self || t->state != State::Ready)
            continue;
        if (!found || t->time < minTime) {
            minTime = t->time;
            minTid = t->tid;
            found = true;
        }
    }
    if (&self == _current) {
        _minOtherTime = found ? minTime : 0;
        _minOtherTid = minTid;
        _minOtherFound = found;
        _minOtherValid = true;
    }
    return found;
}

void
Engine::maybeYield(Thread &t)
{
    Cycle minOther = 0;
    if (!minOtherReadyTime(t, minOther))
        return;
    if ((CycleDelta)(t.time - minOther) > _options.slackWindow)
        yieldThread(t);
}

void
Engine::yieldThread(Thread &t)
{
    panic_if(_current != &t, "yield from a non-current thread");
    if (t.state == State::Ready) {
        // If this thread is still the dispatch minimum the
        // scheduler would resume it immediately — skip the fiber
        // round-trip. The dispatcher's choice is the (time, tid)
        // minimum over Ready threads, so continuing inline is
        // indistinguishable from yielding and being re-picked.
        Cycle minOther = 0;
        if (!minOtherReadyTime(t, minOther) || t.time < minOther ||
            (t.time == minOther && t.tid < _minOtherTid))
            return;
    }
    Fiber::yieldToCaller();
}

void
Engine::memRef(Thread &t, RefType type, Addr addr)
{
    flushWork(t);
    // The memory instruction itself issues in one cycle.
    t.time += 1;
    t.stats.instructions += 1;
    std::uint32_t gap = 1;
    if (type == RefType::Read)
        ++t.stats.loads;
    else if (type == RefType::Write)
        ++t.stats.stores;
    ++_totalRefs;

    Cycle issue = t.time;
    Cycle done = _mem->access(t.cpu, type, addr, issue, gap);
    panic_if(done < issue, "memory system completed in the past");
    t.time = done;

    if (_policy)
        _policy->afterRef(*this, t.tid);

    // A long stall always reschedules; otherwise only when another
    // runnable thread has fallen behind the slack window.
    if (t.state == State::Blocked ||
        (CycleDelta)(done - issue) > _options.yieldLatency) {
        yieldThread(t);
    } else {
        maybeYield(t);
    }

    // Poll after the yield so a doom inflicted while this thread
    // was descheduled (a peer's conflict resolution or commit
    // publication) unwinds at the very next reference.
    if (t.tx.inTxn && _mem->tmPoll(t.cpu))
        throw TmAbortUnwind{};
}

void
Engine::addWork(Thread &t, std::uint64_t instrs)
{
    t.pendingWork += instrs;
}

void
Engine::idleThread(Thread &t, Cycle until)
{
    flushWork(t);
    if (until <= t.time)
        return;
    Cycle from = t.time;
    t.time = until;
    // Same rescheduling rule as a memory stall: a long idle lets
    // the threads that fell behind run; a short one only yields
    // when someone has dropped out of the slack window.
    if ((CycleDelta)(until - from) > _options.yieldLatency)
        yieldThread(t);
    else
        maybeYield(t);
}

void
Engine::memFence(Thread &t)
{
    // Synchronization accesses are strongly ordered: every store
    // the thread issued before this point must be globally
    // performed before the sync reference itself may issue. Under
    // sequential consistency the memory system's fence is a no-op
    // returning `now`, so this costs nothing and changes nothing.
    flushWork(t);
    Cycle done = _mem->fence(t.cpu, t.time);
    panic_if(done < t.time, "memory system fenced in the past");
    t.time = done;
}

void
Engine::acquire(Thread &t, SimLock &lock)
{
    panic_if(t.tx.inTxn, "lock() inside a transaction");
    memFence(t);
    // Model the test of the lock word.
    memRef(t, RefType::Read, lock._addr);
    if (lock._holder < 0) {
        lock._holder = t.tid;
        memRef(t, RefType::Write, lock._addr);
        // The taken-store is itself a sync access: drain it now so
        // it is globally performed before the critical section
        // runs, not whenever the buffer next gets around to it.
        memFence(t);
        return;
    }
    // Contended: sleep until the releaser hands the lock over.
    lock._waiters.push_back(t.tid);
    t.state = State::Blocked;
    yieldThread(t);
    panic_if(lock._holder != t.tid,
             "woke from lock wait without ownership");
    memRef(t, RefType::Write, lock._addr);
    memFence(t);
}

void
Engine::release(Thread &t, SimLock &lock)
{
    panic_if(t.tx.inTxn, "unlock() inside a transaction");
    panic_if(lock._holder != t.tid,
             "thread ", t.tid, " releasing a lock it does not hold");
    memFence(t);
    memRef(t, RefType::Write, lock._addr);
    // Drain the unlock store immediately: a buffered release would
    // stretch every lock hold by the drain lag and convoy the
    // waiters behind it.
    memFence(t);
    if (lock._waiters.empty()) {
        lock._holder = -1;
        return;
    }
    ThreadId heir = lock._waiters.front();
    lock._waiters.pop_front();
    lock._holder = heir;
    wakeThread(heir, t.time);
}

void
Engine::barrier(Thread &t, SimBarrier &bar)
{
    panic_if(t.tx.inTxn, "barrier() inside a transaction");
    memFence(t);
    // Arrival updates the barrier counter (read + write traffic),
    // and the arrival store is itself strongly ordered.
    memRef(t, RefType::Read, bar._addr);
    memRef(t, RefType::Write, bar._addr);
    memFence(t);
    bar._latestArrival = std::max(bar._latestArrival, t.time);

    if (++bar._arrived < bar._expected) {
        Cycle arrive = t.time;
        bar._waiters.push_back(t.tid);
        t.state = State::Blocked;
        yieldThread(t);
        // Resumed at the release time; the wait spans the gap.
        if (_recorder)
            _recorder->barrierWait(t.tid, arrive, t.time);
        return;
    }

    // Last arrival releases everyone.
    Cycle releaseTime =
        bar._latestArrival + _options.barrierOverhead;
    if (_recorder)
        _recorder->barrierRelease(releaseTime, bar._expected);
    for (ThreadId waiter : bar._waiters)
        wakeThread(waiter, releaseTime);
    bar._waiters.clear();
    bar._arrived = 0;
    bar._latestArrival = 0;
    t.time = std::max(t.time, releaseTime);
    maybeYield(t);
}

void
Engine::transaction(Thread &t, ThreadCtx &ctx, SimLock &fallback,
                    const std::function<void(ThreadCtx &)> &body)
{
    panic_if(t.tx.inTxn, "nested transactions are not supported");
    TmPolicy policy = _mem->tmPolicy();
    if (!policy.enabled) {
        // No HTM: an ordinary critical section — and the measured
        // lock-based baseline for the TM figures.
        acquire(t, fallback);
        body(ctx);
        release(t, fallback);
        return;
    }

    int attempts = 0;
    for (;;) {
        flushWork(t);
        t.time = _mem->tmBegin(t.cpu, t.time);
        t.tx.inTxn = true;
        t.tx.log.clear();
        bool committed = false;
        try {
            // Subscribe to the fallback lock (the TSX idiom): the
            // read enters this transaction's read set, so a
            // fallback acquirer's non-transactional writes to the
            // lock word doom every speculating peer — mutual
            // exclusion between the lock path and every
            // transaction, with no extra machinery.
            memRef(t, RefType::Read, fallback._addr);
            if (fallback._holder >= 0)
                throw TmAbortUnwind{};
            body(ctx);
            flushWork(t);
            t.time = _mem->tmCommit(t.cpu, t.time, &committed);
        } catch (const TmAbortUnwind &) {
            committed = false;
        }
        if (committed) {
            t.tx.inTxn = false;
            applyTxLog(t);
            return;
        }
        t.tx.inTxn = false;
        t.tx.log.clear();
        t.time = _mem->tmAbort(t.cpu, t.time);
        ++attempts;
        if (attempts >= policy.maxAborts) {
            // Forward-progress guarantee: give up speculating and
            // run under the global lock, whose writes doom every
            // concurrent transaction (see the subscription above).
            _mem->tmFallback(t.cpu);
            acquire(t, fallback);
            body(ctx);
            release(t, fallback);
            return;
        }
        // Deterministic exponential backoff, salted by thread id
        // so colliding retries spread out instead of re-colliding.
        Cycle backoff = policy.backoffBase
                        << std::min(attempts - 1, 10);
        backoff += (Cycle)((std::uint64_t)(t.tid + 1) * 2654435761u %
                           (std::uint64_t)(policy.backoffBase + 1));
        idleThread(t, t.time + backoff);
    }
}

void
Engine::applyTxLog(Thread &t)
{
    for (const TxWrite &w : t.tx.log)
        std::memcpy(w.host, w.bytes, w.size);
    t.tx.log.clear();
}

bool
Engine::txnForward(Thread &t, const void *host, void *out,
                   std::size_t size)
{
    if (!t.tx.inTxn)
        return false;
    // Youngest-first, like store-buffer read bypass.
    for (auto it = t.tx.log.rbegin(); it != t.tx.log.rend(); ++it) {
        if (it->host == host && it->size == size) {
            std::memcpy(out, it->bytes, size);
            return true;
        }
    }
    return false;
}

bool
Engine::txnStore(Thread &t, void *host, const void *src,
                 std::size_t size)
{
    if (!t.tx.inTxn)
        return false;
    panic_if(size > sizeof(TxWrite::bytes),
             "transactional store wider than a word");
    for (TxWrite &w : t.tx.log) {
        if (w.host == host && w.size == size) {
            std::memcpy(w.bytes, src, size);
            return true;
        }
    }
    TxWrite w;
    w.host = host;
    w.size = (unsigned)size;
    std::memcpy(w.bytes, src, size);
    t.tx.log.push_back(w);
    return true;
}

void
ThreadCtx::refHost(RefType type, const void *ptr)
{
    _engine.memRef(*(Engine::Thread *)_thread, type,
                   _arena.simAddr(ptr));
}

void
ThreadCtx::loadAddr(Addr addr)
{
    _engine.memRef(*(Engine::Thread *)_thread, RefType::Read, addr);
}

void
ThreadCtx::storeAddr(Addr addr)
{
    _engine.memRef(*(Engine::Thread *)_thread, RefType::Write, addr);
}

void
ThreadCtx::work(std::uint64_t instrs)
{
    _engine.addWork(*(Engine::Thread *)_thread, instrs);
}

void
ThreadCtx::lock(SimLock &l)
{
    _engine.acquire(*(Engine::Thread *)_thread, l);
}

void
ThreadCtx::unlock(SimLock &l)
{
    _engine.release(*(Engine::Thread *)_thread, l);
}

void
ThreadCtx::barrier(SimBarrier &b)
{
    _engine.barrier(*(Engine::Thread *)_thread, b);
}

void
ThreadCtx::transaction(SimLock &fallback,
                       const std::function<void(ThreadCtx &)> &body)
{
    _engine.transaction(*(Engine::Thread *)_thread, *this, fallback,
                        body);
}

bool
ThreadCtx::inTxn() const
{
    return ((const Engine::Thread *)_thread)->tx.inTxn;
}

bool
ThreadCtx::txnForward(const void *host, void *out, std::size_t size)
{
    return _engine.txnForward(*(Engine::Thread *)_thread, host, out,
                              size);
}

bool
ThreadCtx::txnStore(void *host, const void *src, std::size_t size)
{
    return _engine.txnStore(*(Engine::Thread *)_thread, host, src,
                            size);
}

Cycle
ThreadCtx::now() const
{
    const Engine::Thread &t = *(const Engine::Thread *)_thread;
    return t.time + t.pendingWork;
}

void
ThreadCtx::idleUntil(Cycle until)
{
    _engine.idleThread(*(Engine::Thread *)_thread, until);
}

void
ThreadCtx::yield()
{
    Engine::Thread &t = *(Engine::Thread *)_thread;
    _engine.flushWork(t);
    _engine.yieldThread(t);
}

} // namespace scmp
