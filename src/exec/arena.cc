#include "arena.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SCMP_ARENA_MMAP 1
#include <sys/mman.h>
#endif

namespace scmp
{

Arena::Arena(std::size_t capacityBytes, Addr base)
    : _capacity(capacityBytes), _base(base)
{
    fatal_if(capacityBytes == 0, "arena capacity must be non-zero");
    // Page-align the host buffer so host-pointer alignment agrees
    // with simulated-address alignment for any power of two up to
    // the page size. The buffer must read as zero (workloads rely
    // on G_MALLOC-style zeroed shared memory); anonymous mappings
    // give that lazily, so a sweep spinning up many machines never
    // pays for the (mostly untouched) capacity, only for pages the
    // workload actually uses.
    std::size_t rounded = (capacityBytes + 4095) & ~(std::size_t)4095;
#ifdef SCMP_ARENA_MMAP
    void *mem = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    fatal_if(mem == MAP_FAILED, "cannot map ", rounded, "B arena");
    _bufferPtr = (char *)mem;
    _mapped = rounded;
#else
    _bufferPtr = (char *)std::aligned_alloc(4096, rounded);
    fatal_if(!_bufferPtr, "cannot allocate ", rounded, "B arena");
    std::memset(_bufferPtr, 0, capacityBytes);
    _mapped = rounded;
#endif
}

Arena::~Arena()
{
    if (!_bufferPtr)
        return;
#ifdef SCMP_ARENA_MMAP
    munmap(_bufferPtr, _mapped);
#else
    std::free(_bufferPtr);
#endif
}

void *
Arena::allocBytes(std::size_t bytes, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "arena alignment must be a power of two");
    std::size_t aligned = (_used + align - 1) & ~(align - 1);
    fatal_if(aligned + bytes > _capacity,
             "arena exhausted: need ", bytes, "B at offset ", aligned,
             ", capacity ", _capacity, "B — raise the arena size");
    _used = aligned + bytes;
    return _bufferPtr + aligned;
}

void
Arena::alignTo(std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "arena alignment must be a power of two");
    _used = (_used + align - 1) & ~(align - 1);
}

} // namespace scmp
