#include "arena.hh"

#include <cstring>

namespace scmp
{

Arena::Arena(std::size_t capacityBytes, Addr base)
    : _capacity(capacityBytes), _base(base)
{
    fatal_if(capacityBytes == 0, "arena capacity must be non-zero");
    // Page-align the host buffer so host-pointer alignment agrees
    // with simulated-address alignment for any power of two up to
    // the page size.
    std::size_t rounded = (capacityBytes + 4095) & ~(std::size_t)4095;
    _buffer.reset((char *)std::aligned_alloc(4096, rounded));
    fatal_if(!_buffer, "cannot allocate ", rounded, "B arena");
    std::memset(_buffer.get(), 0, capacityBytes);
}

void *
Arena::allocBytes(std::size_t bytes, std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "arena alignment must be a power of two");
    std::size_t aligned = (_used + align - 1) & ~(align - 1);
    fatal_if(aligned + bytes > _capacity,
             "arena exhausted: need ", bytes, "B at offset ", aligned,
             ", capacity ", _capacity, "B — raise the arena size");
    _used = aligned + bytes;
    return _buffer.get() + aligned;
}

void
Arena::alignTo(std::size_t align)
{
    panic_if(align == 0 || (align & (align - 1)) != 0,
             "arena alignment must be a power of two");
    _used = (_used + align - 1) & ~(align - 1);
}

} // namespace scmp
