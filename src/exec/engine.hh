/**
 * @file
 * The Tango-Lite-style direct-execution engine.
 *
 * Each simulated processor (or multiprogrammed process) runs real
 * C++ workload code on a fiber. Every instrumented memory reference
 * traps into the Engine, which charges instruction issue time, asks
 * the attached MemorySystem for the reference's completion time, and
 * re-schedules so that the runnable thread with the smallest local
 * clock always executes next — the same interleaving discipline
 * Tango-Lite uses. The whole simulation is single-host-threaded and
 * bit-deterministic.
 */

#ifndef SCMP_EXEC_ENGINE_HH
#define SCMP_EXEC_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "exec/arena.hh"
#include "exec/fiber.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace scmp
{

namespace obs
{
class Recorder;
}

class Engine;
class ThreadCtx;

/**
 * The transactional-execution policy a memory system advertises.
 * Kept as a plain struct here because the engine sits below src/tm
 * in the dependency order: the machine translates its TmParams into
 * this, and a memory system without HTM returns the disabled
 * default.
 */
struct TmPolicy
{
    bool enabled = false;
    /** Aborts tolerated before falling back to the global lock. */
    int maxAborts = 8;
    /** Base of the exponential retry backoff, in cycles. */
    Cycle backoffBase = 32;
};

/**
 * The timing model the engine drives. Implementations: the full
 * cluster/SCC machine model (scmp_core) and simple test doubles.
 */
class MemorySystem
{
  public:
    virtual ~MemorySystem() = default;

    /**
     * Perform one reference.
     *
     * @param cpu      Issuing processor.
     * @param type     Read / Write / Ifetch.
     * @param addr     Simulated byte address.
     * @param now      Issue cycle on that processor.
     * @param instrGap Instructions issued since the previous
     *                 reference (for instruction-fetch modelling).
     * @return the cycle at which the processor may continue.
     */
    virtual Cycle access(CpuId cpu, RefType type, Addr addr,
                         Cycle now, std::uint32_t instrGap) = 0;

    /**
     * Full memory fence on @p cpu: every store the processor issued
     * before @p now must be globally performed before this returns.
     * The engine fences at the ANL LOCK/UNLOCK/BARRIER entry points
     * — the weak-ordering sync surface. A sequentially consistent
     * memory system has nothing to drain, hence the no-op default.
     *
     * @return the cycle at which the processor may continue.
     */
    virtual Cycle
    fence(CpuId cpu, Cycle now)
    {
        (void)cpu;
        return now;
    }

    /// @name Hardware transactional memory (no-ops without --tm).
    /// While a transaction is open on a cpu, every access() the
    /// engine issues for it is transactional; the engine polls
    /// tmPoll() after each one and unwinds the fiber to the
    /// tm_begin point when the transaction has been doomed.
    /// @{

    /** What the machine supports; disabled by default. */
    virtual TmPolicy tmPolicy() const { return {}; }

    /** Open a transaction on @p cpu. */
    virtual Cycle
    tmBegin(CpuId cpu, Cycle now)
    {
        (void)cpu;
        return now;
    }

    /** True when @p cpu's open transaction is doomed. */
    virtual bool
    tmPoll(CpuId cpu) const
    {
        (void)cpu;
        return false;
    }

    /**
     * Try to commit @p cpu's transaction. On failure (@p committed
     * false) the transaction stays open and the engine aborts it
     * through tmAbort() — one uniform failure path.
     */
    virtual Cycle
    tmCommit(CpuId cpu, Cycle now, bool *committed)
    {
        (void)cpu;
        *committed = true;
        return now;
    }

    /** Abort @p cpu's open transaction. */
    virtual Cycle
    tmAbort(CpuId cpu, Cycle now)
    {
        (void)cpu;
        return now;
    }

    /** Stats hook: @p cpu gave up and took the fallback lock. */
    virtual void tmFallback(CpuId cpu) { (void)cpu; }
    /// @}
};

/**
 * Optional scheduling policy layered on the engine; used by the
 * multiprogramming round-robin scheduler to time-slice processes
 * over a smaller number of processors.
 */
class SchedulerPolicy
{
  public:
    virtual ~SchedulerPolicy() = default;

    /** Called once before the first thread runs. */
    virtual void onStart(Engine &engine) { (void)engine; }

    /** Called after a thread's clock advances past a reference. */
    virtual void afterRef(Engine &engine, ThreadId tid)
    {
        (void)engine;
        (void)tid;
    }

    /** Called when a thread's workload function returns. */
    virtual void onThreadDone(Engine &engine, ThreadId tid)
    {
        (void)engine;
        (void)tid;
    }
};

/** Per-thread execution statistics, readable after run(). */
struct ThreadStats
{
    std::uint64_t instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Cycle finishTime = 0;
};

/** A lock with ANL LOCK/UNLOCK semantics and simulated traffic. */
class SimLock
{
  public:
    /** Allocate the lock word inside @p arena for a stable address. */
    explicit SimLock(Arena &arena)
        : _addr(arena.simAddr(arena.alloc<std::uint64_t>()))
    {
    }

  private:
    friend class Engine;
    Addr _addr;
    ThreadId _holder = -1;
    std::deque<ThreadId> _waiters;
};

/** A reusable ANL BARRIER with simulated counter traffic. */
class SimBarrier
{
  public:
    SimBarrier(Arena &arena, int expected)
        : _addr(arena.simAddr(arena.alloc<std::uint64_t>())),
          _expected(expected)
    {
        panic_if(expected <= 0, "barrier needs a positive count");
    }

  private:
    friend class Engine;
    Addr _addr;
    int _expected;
    int _arrived = 0;
    Cycle _latestArrival = 0;
    std::vector<ThreadId> _waiters;
};

/** Engine tuning knobs. */
struct EngineOptions
{
    /**
     * How many cycles a thread may run ahead of the slowest
     * runnable thread before yielding. 0 reproduces exact
     * per-reference timestamp interleaving.
     */
    CycleDelta slackWindow = 0;

    /** Stall beyond this many cycles always forces a yield. */
    CycleDelta yieldLatency = 4;

    /** Fiber stack size (deep octree recursion needs room). */
    std::size_t stackBytes = 512 * 1024;

    /** Cycles charged for a barrier release broadcast. */
    Cycle barrierOverhead = 16;

    /** Cycles charged for a context switch (multiprogramming). */
    Cycle contextSwitchCost = 1000;
};

/**
 * The execution engine. Owns the fibers and the simulated clock of
 * every thread; drives the MemorySystem.
 */
class Engine
{
  public:
    Engine(MemorySystem *mem, Arena *arena,
           EngineOptions options = {});
    ~Engine();

    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /**
     * Create a simulated thread.
     *
     * @param cpu Processor the thread starts bound to.
     * @param fn  Workload body; receives a ThreadCtx.
     * @return the new thread's id (dense, starting at 0).
     */
    ThreadId spawn(CpuId cpu, std::function<void(ThreadCtx &)> fn);

    /** Attach a scheduling policy (may be null). */
    void setPolicy(SchedulerPolicy *policy) { _policy = policy; }

    /**
     * Attach an observability recorder (may be null). Hooks are
     * guarded by one branch on this pointer and observation never
     * feeds back into timing.
     */
    void setRecorder(obs::Recorder *recorder)
    {
        _recorder = recorder;
    }
    obs::Recorder *recorder() const { return _recorder; }

    /** Run until every spawned thread has finished. */
    void run();

    /// @name Introspection (valid during and after run()).
    /// @{
    int numThreads() const { return (int)_threads.size(); }
    Cycle timeOf(ThreadId tid) const;
    CpuId cpuOf(ThreadId tid) const;
    bool done(ThreadId tid) const;
    bool blocked(ThreadId tid) const;
    const ThreadStats &statsOf(ThreadId tid) const;
    /** Completion time of the whole run (max thread finish time). */
    Cycle finishTime() const { return _finishTime; }
    std::uint64_t totalRefs() const { return _totalRefs; }
    std::uint64_t totalInstructions() const;
    const EngineOptions &options() const { return _options; }
    Arena &arena() { return *_arena; }
    /// @}

    /// @name Policy/scheduler hooks (not for workload code).
    /// @{
    void blockThread(ThreadId tid);
    void wakeThread(ThreadId tid, Cycle atTime);
    void bindCpu(ThreadId tid, CpuId cpu);
    void setTime(ThreadId tid, Cycle time);
    /// @}

  private:
    friend class ThreadCtx;

    enum class State { Ready, Blocked, Done };

    /**
     * One deferred transactional host write. Speculative values
     * live here — never in host memory — until commit, so an abort
     * discards them by clearing the log and other threads reading
     * host memory always see committed state (isolation).
     */
    struct TxWrite
    {
        void *host;
        unsigned size;
        unsigned char bytes[8];
    };

    /** A thread's speculative context (see ThreadCtx::transaction). */
    struct TxState
    {
        bool inTxn = false;
        std::vector<TxWrite> log;
    };

    struct Thread
    {
        ThreadId tid;
        CpuId cpu;
        Cycle time = 0;
        State state = State::Ready;
        std::uint64_t pendingWork = 0;
        TxState tx;
        ThreadStats stats;
        std::function<void(ThreadCtx &)> fn;
        std::unique_ptr<Fiber> fiber;
    };

    /// @name Called from inside fibers via ThreadCtx.
    /// @{
    void memRef(Thread &t, RefType type, Addr addr);
    void addWork(Thread &t, std::uint64_t instrs);
    void idleThread(Thread &t, Cycle until);
    void acquire(Thread &t, SimLock &lock);
    void release(Thread &t, SimLock &lock);
    void barrier(Thread &t, SimBarrier &bar);
    void yieldThread(Thread &t);
    void transaction(Thread &t, ThreadCtx &ctx, SimLock &fallback,
                     const std::function<void(ThreadCtx &)> &body);
    bool txnForward(Thread &t, const void *host, void *out,
                    std::size_t size);
    bool txnStore(Thread &t, void *host, const void *src,
                  std::size_t size);
    /// @}

    /** Make the speculative log's values architectural (commit). */
    void applyTxLog(Thread &t);

    /** Charge accumulated compute instructions to the clock. */
    void flushWork(Thread &t);

    /** Full fence before a synchronization access (weak ordering). */
    void memFence(Thread &t);

    /** Yield if another runnable thread is too far behind. */
    void maybeYield(Thread &t);

    /** Smallest clock among Ready threads other than @p self. */
    bool minOtherReadyTime(const Thread &self, Cycle &minTime) const;

    /** Drop the cached min-other-ready result (state changed). */
    void
    invalidateMinOtherCache()
    {
        _minOtherValid = false;
    }

    /**
     * One ready-heap element. Entries are lazily deleted: a thread
     * whose clock or state changed leaves its old entry behind, and
     * the dispatcher discards any popped entry that no longer
     * matches the thread's live (state, time).
     */
    struct ReadyEntry
    {
        Cycle time;
        ThreadId tid;
    };

    /** Min-heap order on (time, tid) — the dispatch tie-break. */
    struct ReadyLater
    {
        bool
        operator()(const ReadyEntry &a, const ReadyEntry &b) const
        {
            return a.time != b.time ? a.time > b.time
                                    : a.tid > b.tid;
        }
    };

    /** Enter @p t into the ready heap at its current clock. */
    void pushReady(const Thread &t);

    /** Seed the min-other cache from the heap top at dispatch. */
    void seedMinOther();

    Thread &threadRef(ThreadId tid);
    const Thread &threadRef(ThreadId tid) const;

    MemorySystem *_mem;
    Arena *_arena;
    EngineOptions _options;
    SchedulerPolicy *_policy = nullptr;
    obs::Recorder *_recorder = nullptr;
    std::vector<std::unique_ptr<Thread>> _threads;
    Thread *_current = nullptr;
    Cycle _finishTime = 0;
    std::uint64_t _totalRefs = 0;
    bool _running = false;

    /**
     * Memoized minOtherReadyTime for the current slice. While one
     * thread runs, every other thread's clock and state are frozen
     * unless this engine mutates them (wake/block/setTime) — so the
     * O(threads) scan that used to run on EVERY reference collapses
     * to one compare. Invalidated at each dispatch and by every
     * cross-thread mutation; purely a cache, so scheduling decisions
     * (and therefore timing) are bit-identical.
     */
    mutable Cycle _minOtherTime = 0;
    mutable ThreadId _minOtherTid = -1;
    mutable bool _minOtherFound = false;
    mutable bool _minOtherValid = false;

    /**
     * Lazy-deletion dispatch heap. Invariant: every Ready thread
     * that is not currently running has an entry carrying its exact
     * current (time, tid); stale entries (clock moved, thread
     * blocked or finished) are discarded when popped. Selection is
     * therefore identical to the original linear scan — the valid
     * minimum of (time, tid) over Ready threads — at O(log n) per
     * dispatch instead of O(n).
     */
    std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                        ReadyLater>
        _ready;
    /** Threads not yet Done (for the deadlock diagnostic). */
    int _live = 0;
};

/**
 * The per-thread view handed to workload code. All simulation side
 * effects of workload execution go through this class.
 */
class ThreadCtx
{
  public:
    ThreadCtx(Engine &engine, void *thread, ThreadId tid, Arena &arena)
        : _engine(engine), _thread(thread), _tid(tid), _arena(arena)
    {
    }

    /** This thread's id (== starting CpuId for parallel runs). */
    ThreadId tid() const { return _tid; }

    /** The shared arena (for nested allocations inside phases). */
    Arena &arena() { return _arena; }

    /** Simulate a data load of the datum at host pointer @p ptr. */
    void
    load(const void *ptr)
    {
        refHost(RefType::Read, ptr);
    }

    /** Simulate a data store to the datum at host pointer @p ptr. */
    void
    store(void *ptr)
    {
        refHost(RefType::Write, ptr);
    }

    /** Simulate a load of an explicit simulated address. */
    void loadAddr(Addr addr);

    /** Simulate a store to an explicit simulated address. */
    void storeAddr(Addr addr);

    /** Charge @p instrs non-memory instructions of compute. */
    void work(std::uint64_t instrs);

    /** ANL LOCK. */
    void lock(SimLock &l);
    /** ANL UNLOCK. */
    void unlock(SimLock &l);
    /** ANL BARRIER. */
    void barrier(SimBarrier &b);

    /**
     * Execute @p body atomically: as a hardware transaction when
     * the memory system advertises one (--tm={eager,lazy}), with
     * exponential-backoff retry on abort and a fallback to
     * @p fallback after maxAborts attempts; as a plain
     * lock/body/unlock critical section otherwise — which makes
     * the --tm=off run the lock-based baseline the TM figures
     * measure speedup against, through this same call site.
     *
     * Contract: shared data inside @p body goes through
     * Shared::ldTx / Shared::stTx (speculative host values are
     * deferred so aborts roll them back); the body must not
     * synchronize (lock/barrier) and may re-execute after aborts.
     */
    void transaction(SimLock &fallback,
                     const std::function<void(ThreadCtx &)> &body);

    /** True while executing inside an open hardware transaction. */
    bool inTxn() const;

    /// @name Transactional data plumbing used by Shared<T>.
    /// @{
    /** Forward @p size bytes from this txn's write log, if hit. */
    bool txnForward(const void *host, void *out, std::size_t size);
    /** Defer a host write into the log; false when not in a txn. */
    bool txnStore(void *host, const void *src, std::size_t size);
    /// @}

    /** This thread's simulated clock, including uncharged work. */
    Cycle now() const;

    /**
     * Idle until cycle @p until without charging instructions —
     * an open-loop workload waiting for its next arrival. No-op
     * when @p until is not in the future.
     */
    void idleUntil(Cycle until);

    /** Voluntarily yield to the scheduler (rarely needed). */
    void yield();

  private:
    void refHost(RefType type, const void *ptr);

    Engine &_engine;
    void *_thread;
    ThreadId _tid;
    Arena &_arena;
};

/**
 * A shared scalar whose every access is simulated. Keeps the same
 * size/alignment as T so arrays of Shared<T> index like arrays of T
 * in the cache.
 */
template <typename T>
class Shared
{
  public:
    Shared() = default;

    /** Simulated load. */
    T
    ld(ThreadCtx &ctx) const
    {
        ctx.load(&_value);
        return _value;
    }

    /** Simulated store. */
    void
    st(ThreadCtx &ctx, const T &v)
    {
        _value = v;
        ctx.store(&_value);
    }

    /** Read-modify-write convenience (two references). */
    template <typename Fn>
    T
    rmw(ThreadCtx &ctx, Fn fn)
    {
        T v = ld(ctx);
        v = fn(v);
        st(ctx, v);
        return v;
    }

    /**
     * Transactional load: inside a transaction, forwards this
     * txn's own deferred value when one exists (no simulated
     * traffic — the word is write-set protected), else performs a
     * transactional read of the committed value. Outside a
     * transaction it is exactly ld().
     */
    T
    ldTx(ThreadCtx &ctx) const
    {
        T v{};
        if (ctx.txnForward(&_value, &v, sizeof(T)))
            return v;
        ctx.load(&_value);
        return _value;
    }

    /**
     * Transactional store: inside a transaction the host value is
     * deferred into the txn's write log (applied at commit,
     * discarded on abort) while the simulated store grows the
     * speculative write set. Outside a transaction it is st().
     */
    void
    stTx(ThreadCtx &ctx, const T &v)
    {
        if (!ctx.txnStore(&_value, &v, sizeof(T)))
            _value = v;
        ctx.store(&_value);
    }

    /** Host-side access for setup/verification (not simulated). */
    T &raw() { return _value; }
    const T &raw() const { return _value; }

  private:
    T _value{};
};

/**
 * A lock-protected monotone task counter — the ANL GSS/GETSUB
 * self-scheduling idiom used by the SPLASH codes.
 */
class TaskCounter
{
  public:
    TaskCounter(Arena &arena, std::int64_t limit)
        : _lock(arena), _next(arena.alloc<Shared<std::int64_t>>()),
          _limit(limit)
    {
    }

    /**
     * Claim the next task index.
     * @return the claimed index, or -1 when exhausted.
     */
    std::int64_t
    next(ThreadCtx &ctx)
    {
        return nextChunk(ctx, 1);
    }

    /**
     * Claim a chunk of @p chunk consecutive task indices.
     * @return the first claimed index, or -1 when exhausted. The
     *         caller owns [first, min(first + chunk, limit)).
     */
    std::int64_t
    nextChunk(ThreadCtx &ctx, std::int64_t chunk)
    {
        ctx.lock(_lock);
        std::int64_t v = _next->ld(ctx);
        if (v < _limit)
            _next->st(ctx, v + chunk);
        ctx.unlock(_lock);
        return v < _limit ? v : -1;
    }

    /** Upper bound for indices claimed via next()/nextChunk(). */
    std::int64_t limit() const { return _limit; }

    /** Reset for the next phase (call from one thread only). */
    void
    reset(ThreadCtx &ctx, std::int64_t limit)
    {
        _next->st(ctx, 0);
        _limit = limit;
    }

  private:
    SimLock _lock;
    Shared<std::int64_t> *_next;
    std::int64_t _limit;
};

} // namespace scmp

#endif // SCMP_EXEC_ENGINE_HH
