/**
 * @file
 * Stackful cooperative fibers.
 *
 * The direct-execution engine runs each simulated processor's
 * workload code on its own fiber and switches between them at
 * memory-reference granularity, so the switch must be cheap. On
 * x86-64 we use a ~15-instruction assembly switch that saves only
 * the System-V callee-saved registers; elsewhere we fall back to
 * POSIX ucontext.
 */

#ifndef SCMP_EXEC_FIBER_HH
#define SCMP_EXEC_FIBER_HH

#include <cstddef>
#include <functional>
#include <memory>

#if !defined(__x86_64__)
#include <ucontext.h>
#define SCMP_FIBER_UCONTEXT 1
#endif

namespace scmp
{

/**
 * A fiber with its own stack. Fibers form a simple two-party
 * protocol with their creator: resume() transfers control into the
 * fiber, Fiber::yieldToCaller() transfers control back. A fiber
 * whose function returns becomes finished(); resuming a finished
 * fiber is a simulator bug.
 */
class Fiber
{
  public:
    /**
     * @param fn         Body to run on the fiber.
     * @param stackBytes Stack size; must cover the workload's
     *                   deepest recursion (octree traversals).
     */
    explicit Fiber(std::function<void()> fn,
                   std::size_t stackBytes = 512 * 1024);
    ~Fiber();

    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /** Switch from the caller into this fiber. */
    void resume();

    /** Switch from inside the currently-running fiber back out. */
    static void yieldToCaller();

    /** @return true once the fiber body has returned. */
    bool finished() const { return _finished; }

    /** @return the fiber currently executing, or nullptr. */
    static Fiber *current();

    /** Internal: first frame on a new fiber's stack. Not API. */
    static void trampolineEntry(Fiber *self);

  private:

    std::function<void()> _fn;
    std::unique_ptr<char[]> _stack;
    std::size_t _stackBytes;
    bool _started = false;
    bool _finished = false;

#ifdef SCMP_FIBER_UCONTEXT
    ucontext_t _context;
    ucontext_t _callerContext;
#else
    void *_sp = nullptr;        //!< fiber's saved stack pointer
    void *_callerSp = nullptr;  //!< caller's saved stack pointer
#endif
};

} // namespace scmp

#endif // SCMP_EXEC_FIBER_HH
