#include "profile_run.hh"

#include "trace/trace.hh"

namespace scmp::model
{

namespace
{

/**
 * The functional memory: feed the tap, complete instantly. The
 * engine still charges instruction time, so thread clocks (and
 * with them the interleaving) advance realistically.
 */
class ProfilingMemory : public MemorySystem
{
  public:
    explicit ProfilingMemory(RefTap *tap) : _tap(tap) {}

    Cycle
    access(CpuId cpu, RefType type, Addr addr, Cycle now,
           std::uint32_t instrGap) override
    {
        (void)instrGap;
        _tap->onRef(cpu, type, addr);
        return now;
    }

  private:
    RefTap *_tap;
};

ProfilerConfig
profilerConfigFor(const MachineConfig &config,
                  const ProfileRunOptions &options)
{
    ProfilerConfig pc;
    pc.numClusters = config.numClusters;
    pc.cpusPerCluster = config.cpusPerCluster;
    pc.lineSizes = options.lineSizes.empty()
                       ? std::vector<std::uint32_t>{
                             config.scc.lineBytes}
                       : options.lineSizes;
    pc.sampleShift = options.sampleShift;
    pc.maxSamples = options.maxSamples;
    return pc;
}

} // namespace

ReuseProfile
profileWorkload(const MachineConfig &config,
                ParallelWorkload &workload,
                const ProfileRunOptions &options)
{
    ReuseProfiler profiler(profilerConfigFor(config, options));
    ProfilingMemory memory(&profiler);

    Arena arena(config.arenaBytes);
    EngineOptions engineOptions = config.engine;
    engineOptions.slackWindow = options.slackWindow;
    Engine engine(&memory, &arena, engineOptions);

    Topology topo{config.numClusters, config.cpusPerCluster};
    workload.setup(arena, topo);
    for (CpuId cpu = 0; cpu < topo.totalCpus(); ++cpu) {
        engine.spawn(cpu,
                     [&workload, cpu, topo](ThreadCtx &ctx) {
                         workload.threadMain(ctx, cpu, topo);
                     });
    }
    engine.run();
    profiler.setInstructions(engine.totalInstructions());
    return profiler.profile();
}

ReuseProfile
profileTrace(const std::string &path, const MachineConfig &config,
             const ProfileRunOptions &options)
{
    ReuseProfiler profiler(profilerConfigFor(config, options));
    TraceReader reader(path);
    TraceRecord record;
    std::uint64_t instructions = 0;
    while (reader.next(record)) {
        instructions += record.gap;
        profiler.onRef((CpuId)record.cpu, record.refType(),
                       record.addr);
    }
    profiler.setInstructions(instructions);
    return profiler.profile();
}

} // namespace scmp::model
