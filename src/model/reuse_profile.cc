#include "reuse_profile.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace scmp::model
{

namespace
{

/** splitmix64 finalizer — the sampling hash over line addresses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

int
ReuseHistogram::bucketOf(std::uint64_t distance)
{
    if (distance == 0)
        return 0;
    int bucket = 64 - std::countl_zero(distance);
    return bucket < numBuckets ? bucket : numBuckets - 1;
}

void
ReuseHistogram::addDistance(std::uint64_t distance,
                            std::uint64_t weight)
{
    buckets[(std::size_t)bucketOf(distance)] += weight;
    samples += weight;
}

void
ReuseHistogram::addCold(std::uint64_t weight)
{
    cold += weight;
    samples += weight;
}

void
ReuseHistogram::addCoherence(std::uint64_t weight)
{
    coherence += weight;
    samples += weight;
}

ReuseHistogram &
ReuseHistogram::merge(const ReuseHistogram &other)
{
    for (int b = 0; b < numBuckets; ++b)
        buckets[(std::size_t)b] += other.buckets[(std::size_t)b];
    cold += other.cold;
    coherence += other.coherence;
    samples += other.samples;
    return *this;
}

ReuseHistogram
ReuseHistogram::dilated(std::uint32_t factor) const
{
    panic_if(factor == 0, "dilation factor must be positive");
    int shift = std::bit_width(factor) - 1;
    ReuseHistogram out;
    out.cold = cold;
    out.coherence = coherence;
    out.samples = samples;
    // Distance 0 stays 0; every other bucket shifts by log2(factor).
    out.buckets[0] = buckets[0];
    for (int b = 1; b < numBuckets; ++b) {
        int to = std::min(b + shift, numBuckets - 1);
        out.buckets[(std::size_t)to] += buckets[(std::size_t)b];
    }
    return out;
}

std::uint64_t
ReuseHistogram::hitsUnder(std::uint64_t capacityLines) const
{
    if (capacityLines == 0)
        return 0;
    // Capacity 2^k admits buckets 0..k exactly (bucket k covers
    // [2^(k-1), 2^k)). Non-powers of two round down.
    int top = 64 - std::countl_zero(capacityLines) - 1;
    if ((capacityLines & (capacityLines - 1)) != 0)
        top = std::min(top, numBuckets - 1);
    std::uint64_t hits = 0;
    for (int b = 0; b <= top && b < numBuckets; ++b)
        hits += buckets[(std::size_t)b];
    return hits;
}

double
ReuseHistogram::expectedHits(std::uint64_t sets,
                             std::uint32_t assoc) const
{
    panic_if(sets == 0 || assoc == 0, "degenerate cache geometry");
    // Conflict model: a distance-d reuse survives with probability
    // exp(-gamma (d/capacity)^beta). Purely random set mapping
    // would give the exponential (beta = 1) Poisson survival, but
    // the workloads' regular layouts spread lines near-uniformly
    // over the sets, so conflicts stay rare while the intervening
    // footprint is below capacity and ramp up sharply as it wraps —
    // a sharper-than-exponential knee. beta = 2, gamma = 0.7 fits
    // the simulated direct-mapped SCC across the SPLASH kernels
    // within the tolerance the cross-validation suite pins down.
    constexpr double beta = 2.0;
    constexpr double gamma = 0.7;
    double capacity = (double)sets * (double)assoc;
    double hits = 0;
    for (int b = 0; b < numBuckets; ++b) {
        std::uint64_t n = buckets[(std::size_t)b];
        if (!n)
            continue;
        // Geometric midpoint of the bucket's distance range.
        double d = b == 0 ? 0.0 : 1.5 * std::ldexp(1.0, b - 1);
        double p =
            std::exp(-gamma * std::pow(d / capacity, beta));
        hits += (double)n * p;
    }
    return hits;
}

ReuseHistogram
ScopeProfile::combined() const
{
    ReuseHistogram out = reads;
    out.merge(writes);
    return out;
}

ScopeProfile &
ScopeProfile::merge(const ScopeProfile &other)
{
    reads.merge(other.reads);
    writes.merge(other.writes);
    return *this;
}

const LineProfile *
ReuseProfile::lineFor(std::uint32_t lineBytes) const
{
    for (const LineProfile &line : lines)
        if (line.lineBytes == lineBytes)
            return &line;
    return nullptr;
}

std::vector<ScopeProfile>
mergeCpuScopes(const std::vector<ScopeProfile> &cpus, int groups)
{
    panic_if(groups <= 0, "need a positive group count");
    panic_if(cpus.empty() || (int)cpus.size() % groups != 0,
             "cannot split ", cpus.size(),
             " per-cpu profiles into ", groups, " equal groups");
    int per = (int)cpus.size() / groups;
    std::vector<ScopeProfile> out((std::size_t)groups);
    for (int g = 0; g < groups; ++g) {
        ScopeProfile sum;
        for (int i = 0; i < per; ++i)
            sum.merge(cpus[(std::size_t)(g * per + i)]);
        out[(std::size_t)g].reads =
            sum.reads.dilated((std::uint32_t)per);
        out[(std::size_t)g].writes =
            sum.writes.dilated((std::uint32_t)per);
    }
    return out;
}

StackDistance::StackDistance() : _bit(4096, 0) {}

void
StackDistance::bitAdd(std::uint32_t slot, int delta)
{
    for (std::uint32_t i = slot; i < _bit.size(); i += i & (0u - i))
        _bit[i] = (std::uint32_t)((int)_bit[i] + delta);
}

std::uint32_t
StackDistance::bitSum(std::uint32_t slot) const
{
    std::uint32_t sum = 0;
    for (std::uint32_t i = slot; i > 0; i -= i & (0u - i))
        sum += _bit[i];
    return sum;
}

void
StackDistance::compact(std::uint32_t needed)
{
    // Reassign live lines to slots 1..n in recency order, then
    // rebuild the tree with room to spare: at least half the
    // capacity is free after a compaction, so its cost amortizes
    // over the accesses that fill it back up.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> live;
    live.reserve(_slotOf.size());
    for (const auto &[line, slot] : _slotOf)
        live.emplace_back(slot, line);
    std::sort(live.begin(), live.end());

    std::size_t capacity = std::max<std::size_t>(
        4096, std::bit_ceil(4 * ((std::size_t)live.size() + needed)));
    _bit.assign(capacity, 0);
    _clock = 0;
    for (auto &[slot, line] : live) {
        ++_clock;
        _slotOf[line] = _clock;
        bitAdd(_clock, +1);
    }
}

std::uint64_t
StackDistance::access(std::uint64_t line)
{
    std::uint64_t distance = coldDistance;
    auto it = _slotOf.find(line);
    if (it != _slotOf.end()) {
        // Distinct lines touched since: live lines in more recent
        // slots. Every live line holds exactly one set bit, so the
        // total is just the map size.
        distance = (std::uint64_t)_slotOf.size() -
                   bitSum(it->second);
        bitAdd(it->second, -1);
        // Drop the stale entry *before* a possible compaction:
        // compact() rebuilds the tree from the map, and a line
        // whose bit is already cleared would be re-registered and
        // then added again below — a phantom bit that skews every
        // later distance.
        _slotOf.erase(it);
    }
    if ((std::size_t)_clock + 1 >= _bit.size())
        compact(1);
    ++_clock;
    bitAdd(_clock, +1);
    _slotOf.emplace(line, _clock);
    return distance;
}

ReuseProfiler::ReuseProfiler(ProfilerConfig config)
    : _config(std::move(config))
{
    panic_if(_config.numClusters <= 0 ||
                 _config.cpusPerCluster <= 0,
             "profiler needs a positive topology");
    panic_if(_config.numClusters * _config.cpusPerCluster > 64,
             "sharing masks support at most 64 processors");
    panic_if(_config.lineSizes.empty(),
             "profiler needs at least one line size");
    panic_if(_config.sampleShift >= 32,
             "sample shift ", _config.sampleShift, " is absurd");

    _profile.numClusters = _config.numClusters;
    _profile.cpusPerCluster = _config.cpusPerCluster;
    _sampleShift = _config.sampleShift;
    _profile.sampleRate = 1u << _sampleShift;

    int cpus = _config.numClusters * _config.cpusPerCluster;
    for (std::uint32_t lineBytes : _config.lineSizes) {
        panic_if(lineBytes == 0 ||
                     (lineBytes & (lineBytes - 1)) != 0,
                 "line size ", lineBytes, " is not a power of two");
        LineProfile profile;
        profile.lineBytes = lineBytes;
        profile.clusters.resize((std::size_t)_config.numClusters);
        profile.cpus.resize((std::size_t)cpus);
        _profile.lines.push_back(std::move(profile));

        LineStacks stacks;
        stacks.lineShift =
            (std::uint32_t)std::countr_zero(lineBytes);
        stacks.clusters.resize((std::size_t)_config.numClusters);
        stacks.cpus.resize((std::size_t)cpus);
        _stacks.push_back(std::move(stacks));
    }
}

void
ReuseProfiler::onRef(CpuId cpu, RefType type, Addr addr)
{
    panic_if(cpu < 0 || cpu >= _profile.totalCpus(),
             "profiled reference from unexpected cpu ", cpu);
    ++_profile.references;
    bool isRead = type != RefType::Write;
    if (isRead)
        ++_profile.reads;
    else
        ++_profile.writes;

    if (_config.maxSamples && _recorded >= _config.maxSamples)
        return;
    ++_recorded;

    std::uint64_t weight = 1ull << _sampleShift;
    int cluster = cpu / _config.cpusPerCluster;
    for (std::size_t l = 0; l < _stacks.size(); ++l) {
        LineStacks &stacks = _stacks[l];
        LineProfile &profile = _profile.lines[l];
        std::uint64_t line = addr >> stacks.lineShift;
        if (_sampleShift &&
            (mix64(line) >> (64 - _sampleShift)) != 0)
            continue;

        // Write-invalidate sharing state. A group's copy is stale
        // when the group held the line, nobody in it touched it
        // since the last write, and that writer is outside the
        // group — a sure miss regardless of reuse distance. The
        // machine scope (one shared cache) never pays coherence.
        Sharing &sh = stacks.sharing[line];
        std::uint64_t cpuBit = 1ull << cpu;
        std::uint64_t clBits =
            ((_config.cpusPerCluster >= 64
                  ? ~0ull
                  : (1ull << _config.cpusPerCluster) - 1))
            << (cluster * _config.cpusPerCluster);
        bool written = sh.lastWriter >= 0;
        bool cpuStale = written && sh.lastWriter != cpu &&
                        (sh.ever & cpuBit) &&
                        !(sh.sinceWrite & cpuBit);
        bool clusterStale =
            written &&
            sh.lastWriter / _config.cpusPerCluster != cluster &&
            (sh.ever & clBits) && !(sh.sinceWrite & clBits);
        sh.ever |= cpuBit;
        if (isRead)
            sh.sinceWrite |= cpuBit;
        else {
            sh.lastWriter = (std::int16_t)cpu;
            sh.sinceWrite = cpuBit;
        }

        auto record = [&](StackDistance &stack,
                          ScopeProfile &scope, bool stale) {
            std::uint64_t d = stack.access(line);
            ReuseHistogram &hist =
                isRead ? scope.reads : scope.writes;
            if (stale && d != StackDistance::coldDistance)
                hist.addCoherence(weight);
            else if (d == StackDistance::coldDistance)
                hist.addCold(weight);
            else
                hist.addDistance(d << _sampleShift, weight);
        };
        record(stacks.machine, profile.machine, false);
        record(stacks.clusters[(std::size_t)cluster],
               profile.clusters[(std::size_t)cluster],
               clusterStale);
        record(stacks.cpus[(std::size_t)cpu],
               profile.cpus[(std::size_t)cpu], cpuStale);
    }
}

void
ReuseProfiler::setInstructions(std::uint64_t instructions)
{
    _profile.instructions = instructions;
}

} // namespace scmp::model
