#include "analytic.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace scmp::model
{

namespace
{

/** Expected misses of one histogram in a sets x assoc cache. */
double
missesIn(const ReuseHistogram &hist, std::uint64_t sets,
         std::uint32_t assoc)
{
    if (hist.samples == 0)
        return 0;
    double hits = hist.expectedHits(sets, assoc);
    return std::max(0.0, (double)hist.samples - hits);
}

} // namespace

AnalyticEvaluator::AnalyticEvaluator(const ReuseProfile &profile)
    : _profile(profile)
{
    panic_if(_profile.lines.empty(),
             "cannot evaluate from an empty reuse profile");
}

RunResult
AnalyticEvaluator::evaluate(const MachineConfig &config) const
{
    const LineProfile *line =
        _profile.lineFor(config.scc.lineBytes);
    fatal_if(!line,
             "reuse profile does not cover line size ",
             config.scc.lineBytes,
             " B — add it to the profiling pass's lineSizes");

    const int clusters = config.numClusters;
    const int cpus = config.totalCpus();
    const bool privateOrg = config.organization ==
                            ClusterOrganization::PrivateCaches;

    // Pick (or synthesize) the reuse histograms of the streams the
    // caches on the bus will each see.
    std::uint64_t capacity = config.scc.sizeBytes;
    std::vector<ScopeProfile> merged;
    const std::vector<ScopeProfile> *scopes = nullptr;
    if (privateOrg) {
        if (config.privateCacheBytes)
            capacity = config.privateCacheBytes;
        if (cpus == _profile.totalCpus()) {
            scopes = &line->cpus;
        } else {
            merged = mergeCpuScopes(line->cpus, cpus);
            scopes = &merged;
        }
    } else if (clusters == 1) {
        merged.assign(1, line->machine);
        scopes = &merged;
    } else if (clusters == _profile.numClusters) {
        scopes = &line->clusters;
    } else {
        merged = mergeCpuScopes(line->cpus, clusters);
        scopes = &merged;
    }

    std::uint64_t lineBytes = config.scc.lineBytes;
    std::uint32_t assoc = config.scc.assoc;
    std::uint64_t sets =
        std::max<std::uint64_t>(1,
                                capacity / (lineBytes * assoc));

    // Miss RATES from the (possibly sampled) histogram counts,
    // applied to the exact reference totals.
    double sampleReads = 0, sampleWrites = 0;
    double missReads = 0, missWrites = 0;
    double coherent = 0;
    for (const ScopeProfile &scope : *scopes) {
        sampleReads += (double)scope.reads.samples;
        sampleWrites += (double)scope.writes.samples;
        missReads += missesIn(scope.reads, sets, assoc);
        missWrites += missesIn(scope.writes, sets, assoc);
        coherent += (double)(scope.reads.coherence +
                             scope.writes.coherence);
    }
    double readMissRate =
        sampleReads > 0 ? missReads / sampleReads : 0;
    double writeMissRate =
        sampleWrites > 0 ? missWrites / sampleWrites : 0;
    double reads = (double)_profile.reads;
    double writes = (double)_profile.writes;
    double refs = (double)_profile.references;
    double misses = readMissRate * reads + writeMissRate * writes;
    double missRate = refs > 0 ? misses / refs : 0;

    // Bus traffic: a line fetch per miss, a writeback for the
    // dirty fraction, and an invalidation broadcast behind every
    // coherence miss the profile saw (scaled from the sampled
    // stream to the exact totals).
    double sampleTotal = sampleReads + sampleWrites;
    double invalidations =
        sampleTotal > 0 ? coherent / sampleTotal * refs : 0;
    double dirtyFraction = refs > 0 ? writes / refs : 0;
    double busTransactions =
        misses * (1.0 + dirtyFraction) + invalidations;
    double busOccupancyPer = (double)(config.bus.addressOccupancy +
                                      config.bus.transferOccupancy);
    double busBusy = busTransactions * busOccupancyPer;

    // Cycle model. The engine charges one cycle per instruction
    // (references included); a hit adds the bank occupancy, a miss
    // the fixed fetch latency plus queueing on the shared bus.
    double instrs = _profile.instructions > 0
                        ? (double)_profile.instructions
                        : 2.0 * refs;
    double perCpuInstrs = instrs / (double)cpus;
    double perCpuRefs = refs / (double)cpus;
    double perCpuMisses = misses / (double)cpus;
    double hitCost = (double)config.scc.bankOccupancy;
    double missCost = (double)config.bus.memoryLatency;

    // Load imbalance: the run finishes with its busiest processor.
    double imbalance = 1.0;
    if (cpus == _profile.totalCpus() && !line->cpus.empty()) {
        double maxSamples = 0, sumSamples = 0;
        for (const ScopeProfile &cpu : line->cpus) {
            double s = (double)cpu.combined().samples;
            maxSamples = std::max(maxSamples, s);
            sumSamples += s;
        }
        if (sumSamples > 0)
            imbalance = maxSamples /
                        (sumSamples / (double)line->cpus.size());
        imbalance = std::clamp(imbalance, 1.0, 4.0);
    }

    // Bus contention fixed point: waiting time grows with
    // utilization (M/D/1 flavour), utilization depends on the
    // cycle count the waiting time produces.
    double cycles = perCpuInstrs + perCpuRefs * hitCost +
                    perCpuMisses * missCost;
    double utilization = 0;
    for (int iter = 0; iter < 4; ++iter) {
        double total = std::max(cycles * imbalance, 1.0);
        utilization = std::min(busBusy / total, 0.95);
        double wait =
            utilization / (1.0 - utilization) * busOccupancyPer * 0.5;
        cycles = perCpuInstrs + perCpuRefs * hitCost +
                 perCpuMisses * (missCost + wait);
    }
    cycles *= imbalance;

    RunResult result;
    result.cycles = (Cycle)std::llround(cycles);
    result.instructions = _profile.instructions
                              ? _profile.instructions
                              : (std::uint64_t)instrs;
    result.references = _profile.references;
    result.readMissRate = readMissRate;
    result.missRate = missRate;
    result.invalidations =
        (std::uint64_t)std::llround(invalidations);
    result.busTransactions =
        (std::uint64_t)std::llround(busTransactions);
    result.busUtilization =
        cycles > 0 ? busBusy / cycles : 0;
    result.verified = true;
    return result;
}

} // namespace scmp::model
