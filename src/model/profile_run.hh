/**
 * @file
 * The profiling pass: one cheap functional execution of a
 * workload that produces its reuse-distance profile.
 *
 * The pass drives the workload through the ordinary
 * direct-execution engine, but against a functional memory system:
 * every reference completes instantly after being fed to the
 * ReuseProfiler tap, so no cache, bus or DRAM state is simulated
 * and the pass costs a fraction of a cycle-accurate point. The
 * engine still interleaves threads by their local clocks
 * (instructions are charged normally) with a zero slack window,
 * so the profiled stream interleaving stays faithful to what the
 * cycle-accurate machine would see.
 *
 * A recorded trace (src/trace) can stand in for the execution:
 * profileTrace() replays the reference stream straight into the
 * profiler — one recorded run, any number of profiles.
 */

#ifndef SCMP_MODEL_PROFILE_RUN_HH
#define SCMP_MODEL_PROFILE_RUN_HH

#include <string>

#include "core/machine.hh"
#include "core/workload.hh"
#include "model/reuse_profile.hh"

namespace scmp::model
{

/** Knobs of one profiling pass. */
struct ProfileRunOptions
{
    /** SHARDS sampling shift (rate 1/2^shift; 0 = exact). */
    std::uint32_t sampleShift = 0;

    /** Stop recording histograms after this many refs (0 = all). */
    std::uint64_t maxSamples = 0;

    /**
     * Line sizes to profile; empty profiles exactly the
     * configuration's scc.lineBytes.
     */
    std::vector<std::uint32_t> lineSizes;

    /**
     * Engine slack window for the pass. Zero (lock-step
     * interleaving by local clock) is deliberate: a wide window
     * lets each thread run long private stretches, which serializes
     * the profiled stream and inflates shared-data reuse distances
     * far past what any real interleaving produces. Profiling is
     * cheap enough that fidelity wins.
     */
    CycleDelta slackWindow = 0;
};

/**
 * Execute @p workload functionally under @p config's topology and
 * return its reuse profile. The workload must already be
 * reseeded/fresh exactly as for a real run.
 */
ReuseProfile profileWorkload(const MachineConfig &config,
                             ParallelWorkload &workload,
                             const ProfileRunOptions &options = {});

/**
 * Profile a recorded reference trace (src/trace) instead of a
 * live execution. Topology and line sizes come from @p config;
 * sampling knobs from @p options.
 */
ReuseProfile profileTrace(const std::string &path,
                          const MachineConfig &config,
                          const ProfileRunOptions &options = {});

} // namespace scmp::model

#endif // SCMP_MODEL_PROFILE_RUN_HH
