/**
 * @file
 * Reuse-distance (LRU stack distance) profiling of the data
 * reference stream.
 *
 * The analytic fast path rests on one observation (Mattson 1970,
 * applied to shared caches by Barai et al., see PAPERS.md): the
 * number of distinct cache lines touched between two references to
 * the same line — the reuse distance — decides whether the second
 * reference hits in an LRU cache of any given capacity. One pass
 * over the reference stream therefore yields a histogram from
 * which the miss rate of EVERY cache size on the sweep axis can be
 * predicted, without re-simulating.
 *
 * The profiler maintains the histogram at three scopes in the same
 * pass:
 *  - machine: all processors interleaved (a single shared cache),
 *  - cluster: processors of one cluster interleaved (the SCC the
 *    paper sweeps — the scope the evaluator reads), and
 *  - cpu: each processor's own stream (private caches, and the
 *    raw material for predicting other cluster groupings by
 *    histogram merge).
 *
 * Exact stack distances are computed with a last-access-time
 * Fenwick tree (O(log n) per reference). For the fast screen the
 * profiler also supports SHARDS-style spatial sampling: only lines
 * whose address hash falls under a threshold are tracked, and
 * measured distances/counts are scaled by the sampling rate — the
 * standard fixed-rate SHARDS estimator. Rate 1 (the default) is
 * exact and what the unit tests pin down.
 */

#ifndef SCMP_MODEL_REUSE_PROFILE_HH
#define SCMP_MODEL_REUSE_PROFILE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/ref_tap.hh"

namespace scmp::model
{

/**
 * Log2-bucketed reuse-distance histogram.
 *
 * Bucket 0 counts distance-0 reuses (no distinct line in
 * between); bucket b >= 1 counts distances in [2^(b-1), 2^b).
 * Cache capacities on the sweep axis are powers of two, so "all
 * distances below capacity" is an exact prefix of buckets.
 */
struct ReuseHistogram
{
    /** Distances up to 2^47 lines — beyond any simulated heap. */
    static constexpr int numBuckets = 48;

    std::array<std::uint64_t, numBuckets> buckets{};
    std::uint64_t cold = 0;    //!< first-touch (infinite distance)
    /**
     * References invalidated by a remote writer since this scope
     * last held the line: sure misses under write-invalidate,
     * whatever the reuse distance says. Disjoint from the distance
     * buckets — a reference is classified as either a coherence
     * miss or a distance sample, never both.
     */
    std::uint64_t coherence = 0;
    std::uint64_t samples = 0; //!< all counted references

    /** Bucket index for a finite distance. */
    static int bucketOf(std::uint64_t distance);

    /** Count @p weight references at finite @p distance. */
    void addDistance(std::uint64_t distance,
                     std::uint64_t weight = 1);

    /** Count @p weight first-touch references. */
    void addCold(std::uint64_t weight = 1);

    /** Count @p weight coherence (invalidation) misses. */
    void addCoherence(std::uint64_t weight = 1);

    /** Element-wise sum (commutative and associative). */
    ReuseHistogram &merge(const ReuseHistogram &other);

    /**
     * The histogram with every distance multiplied by @p factor (a
     * power of two): the standard approximation for interleaving
     * @p factor statistically similar streams, used when
     * predicting a cluster grouping the profile was not captured
     * under. Counts are preserved; distances shift buckets.
     */
    ReuseHistogram dilated(std::uint32_t factor) const;

    /** Reuses with distance < @p capacityLines (a power of two). */
    std::uint64_t hitsUnder(std::uint64_t capacityLines) const;

    /**
     * Expected hits in a @p sets x @p assoc LRU cache under the
     * standard Poisson conflict model: a distance-d reuse hits
     * when fewer than `assoc` of the d intervening lines landed in
     * its set, P = sum_{k<assoc} e^{-d/sets} (d/sets)^k / k!.
     * Distances use each bucket's geometric midpoint.
     */
    double expectedHits(std::uint64_t sets,
                        std::uint32_t assoc) const;

    std::uint64_t reuses() const { return samples - cold; }

    bool operator==(const ReuseHistogram &) const = default;
};

/** Reads and writes of one interleave scope, one line size. */
struct ScopeProfile
{
    ReuseHistogram reads;
    ReuseHistogram writes;

    ReuseHistogram combined() const;
    ScopeProfile &merge(const ScopeProfile &other);

    bool operator==(const ScopeProfile &) const = default;
};

/** All scopes for one profiled line size. */
struct LineProfile
{
    std::uint32_t lineBytes = 0;
    ScopeProfile machine;
    std::vector<ScopeProfile> clusters; //!< one per cluster
    std::vector<ScopeProfile> cpus;     //!< one per processor
};

/** The product of one profiling pass. */
struct ReuseProfile
{
    int numClusters = 0;     //!< topology the pass ran under
    int cpusPerCluster = 0;
    std::uint64_t references = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    /** Instructions issued by the pass (for the cycle model). */
    std::uint64_t instructions = 0;
    /** Sampling rate the histograms were scaled by (1 = exact). */
    std::uint32_t sampleRate = 1;
    std::vector<LineProfile> lines;

    /** The profile for @p lineBytes, or nullptr. */
    const LineProfile *lineFor(std::uint32_t lineBytes) const;

    int totalCpus() const { return numClusters * cpusPerCluster; }
};

/**
 * Merge per-processor scope profiles into @p groups equal groups
 * (group g owns consecutive processors), dilating each group's
 * distances by its member count — the cross-topology prediction
 * path for cluster groupings the pass was not captured under.
 */
std::vector<ScopeProfile> mergeCpuScopes(
    const std::vector<ScopeProfile> &cpus, int groups);

/**
 * Exact LRU stack-distance tracker over one interleaved stream.
 *
 * Classic last-access-time formulation: each live line occupies a
 * time slot; the stack distance of a reuse is the number of
 * distinct lines whose slot is more recent, counted in O(log n)
 * with a Fenwick tree. Slots are compacted in place when the clock
 * reaches the tree's capacity, so memory stays proportional to the
 * number of live lines.
 */
class StackDistance
{
  public:
    StackDistance();

    static constexpr std::uint64_t coldDistance = ~0ull;

    /**
     * Record one access to @p line.
     * @return the reuse distance, or coldDistance on first touch.
     */
    std::uint64_t access(std::uint64_t line);

    std::uint64_t liveLines() const { return _slotOf.size(); }

  private:
    void bitAdd(std::uint32_t slot, int delta);
    std::uint32_t bitSum(std::uint32_t slot) const;
    void compact(std::uint32_t needed);

    std::unordered_map<std::uint64_t, std::uint32_t> _slotOf;
    std::vector<std::uint32_t> _bit; //!< Fenwick tree, 1-based
    std::uint32_t _clock = 0;        //!< last slot handed out
};

/** Knobs for one profiling pass. */
struct ProfilerConfig
{
    /** Machine shape of the pass (scope layout). */
    int numClusters = 4;
    int cpusPerCluster = 1;

    /** Line sizes to profile (each adds a set of stacks). */
    std::vector<std::uint32_t> lineSizes = {16};

    /**
     * SHARDS spatial sampling: track only lines whose address hash
     * falls in 1/2^sampleShift of the hash space, scaling counts
     * and distances back up by 2^sampleShift. 0 = exact.
     */
    std::uint32_t sampleShift = 0;

    /**
     * Stop recording after this many references (0 = unbounded).
     * The reference totals keep counting so miss-rate denominators
     * stay honest; only the histograms freeze.
     */
    std::uint64_t maxSamples = 0;
};

/**
 * The one-pass profiler. Implements RefTap, so it can ride a live
 * Machine (MachineConfig::refTap), the functional profiling pass
 * (src/model/profile_run), or a recorded trace (src/trace).
 */
class ReuseProfiler : public RefTap
{
  public:
    explicit ReuseProfiler(ProfilerConfig config);

    void onRef(CpuId cpu, RefType type, Addr addr) override;

    /** Stamp the pass's instruction count (profile_run does). */
    void setInstructions(std::uint64_t instructions);

    /** The accumulated profile (valid at any point). */
    const ReuseProfile &profile() const { return _profile; }

    const ProfilerConfig &config() const { return _config; }

  private:
    /**
     * Per-line sharing state (write-invalidate coherence). Two
     * processor bitmasks decide, for any grouping, whether an
     * access finds the group's copy invalidated by a remote write:
     * the group held the line before (`ever` intersects the group)
     * but no member touched it since the last write
     * (`sinceWrite` misses the group) and the writer is remote.
     */
    struct Sharing
    {
        std::int16_t lastWriter = -1;
        std::uint64_t ever = 0;
        std::uint64_t sinceWrite = 0;
    };

    /** Stacks for one line size: machine, clusters, cpus. */
    struct LineStacks
    {
        std::uint32_t lineShift = 0;
        StackDistance machine;
        std::vector<StackDistance> clusters;
        std::vector<StackDistance> cpus;
        std::unordered_map<std::uint64_t, Sharing> sharing;
    };

    ProfilerConfig _config;
    ReuseProfile _profile;
    std::vector<LineStacks> _stacks;
    std::uint64_t _recorded = 0;
    std::uint64_t _sampleThreshold = 0; //!< hash < this => tracked
    std::uint32_t _sampleShift = 0;
};

} // namespace scmp::model

#endif // SCMP_MODEL_REUSE_PROFILE_HH
