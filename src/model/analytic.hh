/**
 * @file
 * The analytic evaluator: one reuse profile in, a predicted
 * RunResult for any design point out.
 *
 * Given the reuse-distance profile of a workload (one profiling
 * pass, see profile_run.hh), evaluate() predicts miss rate, bus
 * occupancy and approximate execution cycles for an arbitrary
 * machine configuration — any SCC size, associativity, line size
 * the profile covers, cluster count and processors per cluster —
 * in microseconds instead of a full simulation. This is the
 * screening half of the two-speed design-space explorer: the
 * analytic pass ranks the grid, the cycle-accurate simulator
 * verifies only the frontier (sweep::SweepModel::Hybrid).
 *
 * Model summary:
 *  - Capacity/conflict misses per cluster cache from the reuse
 *    histogram at the matching interleave scope, with the Poisson
 *    set-conflict correction for finite associativity.
 *  - Cluster groupings the profile was not captured under are
 *    predicted by merging per-cpu histograms with interleave
 *    dilation (mergeCpuScopes).
 *  - Cycles from the engine's timing identity (one cycle per
 *    instruction, hit and miss latencies from the configuration)
 *    with an M/D/1-style bus-contention fixed point and a load
 *    imbalance factor from the per-cpu reference counts.
 *
 *  - Coherence misses from the profiler's per-line sharing masks
 *    (a reference whose line a remote processor wrote since this
 *    scope last held it is a sure miss under write-invalidate);
 *    they also feed the predicted invalidation traffic.
 *
 * Known limits (they bound what the screen can rank, and the
 * hybrid mode exists precisely because of them): synchronization
 * serialization (locks, barriers) is not modelled, so speedups at
 * high processor counts are optimistic, and write-update protocol
 * traffic is treated like write-invalidate.
 */

#ifndef SCMP_MODEL_ANALYTIC_HH
#define SCMP_MODEL_ANALYTIC_HH

#include "core/machine.hh"
#include "core/parallel_run.hh"
#include "model/reuse_profile.hh"

namespace scmp::model
{

/** Predicts design-point results from one reuse profile. */
class AnalyticEvaluator
{
  public:
    /** @p profile must outlive the evaluator. */
    explicit AnalyticEvaluator(const ReuseProfile &profile);

    /**
     * Predict the outcome of running the profiled workload on
     * @p config. Fatal if the profile does not cover
     * config.scc.lineBytes. `verified` is true (nothing ran that
     * could fail).
     */
    RunResult evaluate(const MachineConfig &config) const;

    const ReuseProfile &profile() const { return _profile; }

  private:
    const ReuseProfile &_profile;
};

} // namespace scmp::model

#endif // SCMP_MODEL_ANALYTIC_HH
