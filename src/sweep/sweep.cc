#include "sweep.hh"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>

#include "sim/logging.hh"
#include "sweep/point_key.hh"

namespace scmp::sweep
{

namespace
{

SweepOptions globalDefaults;

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               Clock::now() - start)
        .count();
}

/**
 * Suffix an observability output path with a point's key (before
 * the extension) so concurrent workers write distinct files.
 */
std::string
pointedPath(const std::string &path, std::uint64_t key)
{
    std::string tag = "-" + keyHex(key);
    std::size_t dot = path.find_last_of('.');
    std::size_t slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

} // namespace

void
setDefaultSweepOptions(const SweepOptions &options)
{
    globalDefaults = options;
}

const SweepOptions &
defaultSweepOptions()
{
    return globalDefaults;
}

SweepExecutor::SweepExecutor(SweepOptions options)
    : _options(std::move(options))
{
}

DesignGrid
SweepExecutor::run(const DesignSpace::WorkloadFactory &factory,
                   MachineConfig base,
                   const std::vector<std::uint64_t> &sccSizes,
                   const std::vector<int> &clusterSizes)
{
    auto sweepStart = Clock::now();

    // One throwaway instance for the name; construction is cheap
    // (workloads allocate in setup(), not their constructors).
    const std::string workloadName = factory()->name();

    struct Task
    {
        MachineConfig config;
        int procs;
        std::uint64_t sccBytes;
        std::uint64_t key;
    };
    std::vector<Task> tasks;
    tasks.reserve(clusterSizes.size() * sccSizes.size());
    for (int procs : clusterSizes) {
        for (std::uint64_t size : sccSizes) {
            Task task;
            task.config = base;
            task.config.cpusPerCluster = procs;
            task.config.scc.sizeBytes = size;
            task.procs = procs;
            task.sccBytes = size;
            task.key = pointKey(task.config, workloadName,
                                _options.scale);
            if (_options.obs.enabled) {
                obs::RecorderConfig obsConfig = _options.obs;
                if (!obsConfig.tracePath.empty())
                    obsConfig.tracePath = pointedPath(
                        obsConfig.tracePath, task.key);
                if (!obsConfig.seriesPath.empty())
                    obsConfig.seriesPath = pointedPath(
                        obsConfig.seriesPath, task.key);
                task.config.obs = obsConfig;
            }
            tasks.push_back(std::move(task));
        }
    }

    _stats = SweepRunStats{};
    _stats.total = tasks.size();

    ResultStore store;
    if (!_options.resultsPath.empty())
        store.open(_options.resultsPath, _options.resume);

    // Partition the grid into stored points (served immediately)
    // and pending points (dealt to the workers).
    std::vector<DesignPoint> results(tasks.size());
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &task = tasks[i];
        const StoredPoint *stored =
            _options.resume && store.isOpen() ? store.find(task.key)
                                              : nullptr;
        if (stored) {
            fatal_if(stored->cpusPerCluster != task.procs ||
                         stored->sccBytes != task.sccBytes ||
                         stored->workload != workloadName,
                     "results file '", _options.resultsPath,
                     "' record ", keyHex(task.key),
                     " does not match its key's configuration ",
                     "(key collision or corrupt store)");
            results[i].cpusPerCluster = task.procs;
            results[i].sccBytes = task.sccBytes;
            results[i].result = stored->result;
            ++_stats.reused;
        } else {
            pending.push_back(i);
        }
    }
    if (_options.verbose && _stats.reused > 0) {
        inform("sweep: resuming ", workloadName, " — ",
               _stats.reused, "/", tasks.size(),
               " points already in '", _options.resultsPath, "'");
    }

    const std::size_t toCompute = pending.size();
    std::atomic<std::size_t> completed{0};
    auto computeStart = Clock::now();

    auto runOne = [&](std::size_t i) {
        const Task &task = tasks[i];
        auto workload = factory();
        // Hand the point its deterministic identity before setup;
        // combined with the fresh Machine/Arena/Engine below this
        // makes the point's result independent of which host
        // thread runs it and in what order.
        workload->reseed(task.key);

        std::ostringstream statsJson;
        auto pointStart = Clock::now();
        RunResult result = runParallel(
            task.config, *workload, nullptr, nullptr,
            _options.attachStats ? &statsJson : nullptr);
        double wallMs = msSince(pointStart);

        results[i].cpusPerCluster = task.procs;
        results[i].sccBytes = task.sccBytes;
        results[i].result = result;

        if (store.isOpen()) {
            StoredPoint record;
            record.key = task.key;
            record.workload = workloadName;
            record.scale = _options.scale;
            record.cpusPerCluster = task.procs;
            record.sccBytes = task.sccBytes;
            record.result = result;
            record.wallMs = wallMs;
            record.statsJson = statsJson.str();
            record.series = result.obsSeries;
            store.append(record);
        }

        std::size_t doneCount =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (_options.verbose) {
            double elapsedS = msSince(computeStart) / 1000.0;
            double etaS = doneCount < toCompute
                              ? elapsedS / (double)doneCount *
                                    (double)(toCompute - doneCount)
                              : 0.0;
            inform("sweep ", doneCount, "/", toCompute, ": ",
                   workloadName, " ", task.procs, "P/cluster ",
                   sizeString(task.sccBytes), " -> ",
                   result.cycles, " cycles, rdMiss=",
                   result.readMissRate, " (", wallMs, " ms, ETA ",
                   etaS, " s)");
        }
    };

    int jobs = _options.jobs;
    if (jobs <= 0)
        jobs = (int)std::thread::hardware_concurrency();
    if (jobs < 1)
        jobs = 1;
    if ((std::size_t)jobs > pending.size())
        jobs = (int)pending.size();

    if (jobs <= 1) {
        // Serial reference path — same runOne, same order the old
        // serial sweep used.
        for (std::size_t i : pending)
            runOne(i);
    } else {
        // Work-stealing pool: each worker owns a deque dealt
        // round-robin; it pops its own work from the front and
        // steals from the back of the busiest-looking victim when
        // it runs dry. Stealing from the opposite end keeps owner
        // and thief off the same cache lines and the same grid
        // region (long-running points cluster by coordinates).
        struct WorkQueue
        {
            std::mutex mutex;
            std::deque<std::size_t> tasks;
        };
        std::vector<WorkQueue> queues(jobs);
        for (std::size_t k = 0; k < pending.size(); ++k)
            queues[k % jobs].tasks.push_back(pending[k]);

        auto worker = [&](int self) {
            for (;;) {
                std::size_t task = 0;
                bool got = false;
                {
                    WorkQueue &own = queues[self];
                    std::lock_guard<std::mutex> lock(own.mutex);
                    if (!own.tasks.empty()) {
                        task = own.tasks.front();
                        own.tasks.pop_front();
                        got = true;
                    }
                }
                for (int step = 1; !got && step < jobs; ++step) {
                    WorkQueue &victim =
                        queues[(self + step) % jobs];
                    std::lock_guard<std::mutex> lock(victim.mutex);
                    if (!victim.tasks.empty()) {
                        task = victim.tasks.back();
                        victim.tasks.pop_back();
                        got = true;
                    }
                }
                if (!got)
                    return;  // every queue is empty — all done
                runOne(task);
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (int w = 0; w < jobs; ++w)
            threads.emplace_back(worker, w);
        for (auto &thread : threads)
            thread.join();
    }

    _stats.computed = toCompute;
    _stats.wallMs = msSince(sweepStart);
    if (_options.verbose) {
        inform("sweep: ", workloadName, " done — ",
               _stats.computed, " computed, ", _stats.reused,
               " reused, ", _stats.wallMs / 1000.0, " s");
    }

    DesignGrid grid;
    for (auto &point : results)
        grid.add(std::move(point));
    return grid;
}

} // namespace scmp::sweep

namespace scmp
{

// Defined here (not in core/design_space.cc) so the core library
// stays free of the executor; see the header comment.
DesignGrid
DesignSpace::sweep(const WorkloadFactory &factory,
                   MachineConfig base,
                   const std::vector<std::uint64_t> &sccSizes,
                   const std::vector<int> &clusterSizes,
                   bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;
    sweep::SweepExecutor executor(options);
    return executor.run(factory, base, sccSizes, clusterSizes);
}

std::vector<NetPoint>
DesignSpace::netScalingSweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<int> &clusterCounts,
    const std::vector<NetTopology> &topologies, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<NetPoint> points;
    points.reserve(clusterCounts.size() * topologies.size());
    for (NetTopology topology : topologies) {
        for (int clusters : clusterCounts) {
            MachineConfig config = base;
            config.numClusters = clusters;
            config.net.topology = topology;
            std::uint64_t key = sweep::pointKey(
                config, workloadName, options.scale);

            NetPoint point;
            point.clusters = clusters;
            point.topology = topology;

            const sweep::StoredPoint *stored =
                options.resume && store.isOpen()
                    ? store.find(key)
                    : nullptr;
            if (stored) {
                fatal_if(
                    stored->workload != workloadName ||
                        stored->clusters != clusters ||
                        stored->net != netTopologyName(topology),
                    "results file '", options.resultsPath,
                    "' record ", sweep::keyHex(key),
                    " does not match its key's configuration ",
                    "(key collision or corrupt store)");
                point.result = stored->result;
                points.push_back(std::move(point));
                continue;
            }

            if (options.obs.enabled) {
                obs::RecorderConfig obsConfig = options.obs;
                if (!obsConfig.tracePath.empty())
                    obsConfig.tracePath = sweep::pointedPath(
                        obsConfig.tracePath, key);
                if (!obsConfig.seriesPath.empty())
                    obsConfig.seriesPath = sweep::pointedPath(
                        obsConfig.seriesPath, key);
                config.obs = obsConfig;
            }

            auto workload = factory();
            workload->reseed(key);
            std::ostringstream statsJson;
            auto pointStart = sweep::Clock::now();
            point.result = runParallel(
                config, *workload, nullptr, nullptr,
                options.attachStats ? &statsJson : nullptr);
            double wallMs = sweep::msSince(pointStart);

            if (store.isOpen()) {
                sweep::StoredPoint record;
                record.key = key;
                record.workload = workloadName;
                record.scale = options.scale;
                record.cpusPerCluster = config.cpusPerCluster;
                record.sccBytes = config.scc.sizeBytes;
                record.clusters = clusters;
                record.net = netTopologyName(topology);
                record.result = point.result;
                record.wallMs = wallMs;
                record.statsJson = statsJson.str();
                record.series = point.result.obsSeries;
                store.append(record);
            }
            if (options.verbose) {
                inform("net sweep: ", workloadName, " ",
                       netTopologyName(topology), " x", clusters,
                       " clusters -> ", point.result.cycles,
                       " cycles, busUtil=",
                       point.result.busUtilization, " (", wallMs,
                       " ms)");
            }
            points.push_back(std::move(point));
        }
    }
    return points;
}

std::vector<MemPoint>
DesignSpace::memScalingSweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<int> &channelCounts,
    const std::vector<int> &bankCounts,
    const std::vector<MemSched> &scheds, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<MemPoint> points;
    points.reserve(channelCounts.size() * bankCounts.size() *
                   scheds.size());
    for (MemSched sched : scheds) {
        for (int channels : channelCounts) {
            for (int banks : bankCounts) {
                MachineConfig config = base;
                config.dram.kind = MemBackendKind::Banked;
                config.dram.channels = channels;
                config.dram.banks = banks;
                config.dram.sched = sched;
                std::uint64_t key = sweep::pointKey(
                    config, workloadName, options.scale);

                MemPoint point;
                point.channels = channels;
                point.banks = banks;
                point.sched = sched;

                const sweep::StoredPoint *stored =
                    options.resume && store.isOpen()
                        ? store.find(key)
                        : nullptr;
                if (stored) {
                    fatal_if(
                        stored->workload != workloadName ||
                            stored->mem !=
                                memBackendName(config.dram.kind) ||
                            stored->channels != channels ||
                            stored->banks != banks ||
                            stored->memSched != memSchedName(sched),
                        "results file '", options.resultsPath,
                        "' record ", sweep::keyHex(key),
                        " does not match its key's configuration ",
                        "(key collision or corrupt store)");
                    point.result = stored->result;
                    points.push_back(std::move(point));
                    continue;
                }

                if (options.obs.enabled) {
                    obs::RecorderConfig obsConfig = options.obs;
                    if (!obsConfig.tracePath.empty())
                        obsConfig.tracePath = sweep::pointedPath(
                            obsConfig.tracePath, key);
                    if (!obsConfig.seriesPath.empty())
                        obsConfig.seriesPath = sweep::pointedPath(
                            obsConfig.seriesPath, key);
                    config.obs = obsConfig;
                }

                auto workload = factory();
                workload->reseed(key);
                std::ostringstream statsJson;
                auto pointStart = sweep::Clock::now();
                point.result = runParallel(
                    config, *workload, nullptr, nullptr,
                    options.attachStats ? &statsJson : nullptr);
                double wallMs = sweep::msSince(pointStart);

                if (store.isOpen()) {
                    sweep::StoredPoint record;
                    record.key = key;
                    record.workload = workloadName;
                    record.scale = options.scale;
                    record.cpusPerCluster = config.cpusPerCluster;
                    record.sccBytes = config.scc.sizeBytes;
                    record.mem = memBackendName(config.dram.kind);
                    record.channels = channels;
                    record.banks = banks;
                    record.memSched = memSchedName(sched);
                    record.result = point.result;
                    record.wallMs = wallMs;
                    record.statsJson = statsJson.str();
                    record.series = point.result.obsSeries;
                    store.append(record);
                }
                if (options.verbose) {
                    inform("mem sweep: ", workloadName, " ",
                           memSchedName(sched), " ", channels,
                           "ch x ", banks, " banks -> ",
                           point.result.cycles,
                           " cycles, rowHitRate=",
                           point.result.dramRowHitRate, " (",
                           wallMs, " ms)");
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

std::vector<ConsistencyPoint>
DesignSpace::consistencySweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<ConsistencyModel> &models,
    const std::vector<NetTopology> &topologies,
    const std::vector<NetArbitration> &arbitrations, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<ConsistencyPoint> points;
    points.reserve(models.size() * topologies.size() *
                   arbitrations.size());
    for (ConsistencyModel model : models) {
        for (NetTopology topology : topologies) {
            for (std::size_t a = 0; a < arbitrations.size(); ++a) {
                // Arbitration is a split-bus knob; other fabrics
                // would evaluate the same design point once per
                // discipline, so take only the first for them.
                if (topology != NetTopology::Split && a > 0)
                    break;
                NetArbitration arbitration = arbitrations[a];

                MachineConfig config = base;
                config.consistency.model = model;
                config.net.topology = topology;
                config.net.arbitration = arbitration;
                std::uint64_t key = sweep::pointKey(
                    config, workloadName, options.scale);

                ConsistencyPoint point;
                point.model = model;
                point.topology = topology;
                point.arbitration = arbitration;

                const sweep::StoredPoint *stored =
                    options.resume && store.isOpen()
                        ? store.find(key)
                        : nullptr;
                if (stored) {
                    fatal_if(
                        stored->workload != workloadName ||
                            stored->net !=
                                netTopologyName(topology) ||
                            (model != ConsistencyModel::Sc &&
                             stored->consistency !=
                                 consistencyName(model)),
                        "results file '", options.resultsPath,
                        "' record ", sweep::keyHex(key),
                        " does not match its key's configuration ",
                        "(key collision or corrupt store)");
                    point.result = stored->result;
                    points.push_back(std::move(point));
                    continue;
                }

                if (options.obs.enabled) {
                    obs::RecorderConfig obsConfig = options.obs;
                    if (!obsConfig.tracePath.empty())
                        obsConfig.tracePath = sweep::pointedPath(
                            obsConfig.tracePath, key);
                    if (!obsConfig.seriesPath.empty())
                        obsConfig.seriesPath = sweep::pointedPath(
                            obsConfig.seriesPath, key);
                    config.obs = obsConfig;
                }

                auto workload = factory();
                workload->reseed(key);
                std::ostringstream statsJson;
                auto pointStart = sweep::Clock::now();
                point.result = runParallel(
                    config, *workload, nullptr, nullptr,
                    options.attachStats ? &statsJson : nullptr);
                double wallMs = sweep::msSince(pointStart);

                if (store.isOpen()) {
                    sweep::StoredPoint record;
                    record.key = key;
                    record.workload = workloadName;
                    record.scale = options.scale;
                    record.cpusPerCluster = config.cpusPerCluster;
                    record.sccBytes = config.scc.sizeBytes;
                    record.net = netTopologyName(topology);
                    record.consistency = consistencyName(model);
                    record.result = point.result;
                    record.wallMs = wallMs;
                    record.statsJson = statsJson.str();
                    record.series = point.result.obsSeries;
                    store.append(record);
                }
                if (options.verbose) {
                    inform("consistency sweep: ", workloadName,
                           " ", consistencyName(model), " ",
                           netTopologyName(topology), "/",
                           netArbitrationName(arbitration), " -> ",
                           point.result.cycles, " cycles (",
                           wallMs, " ms)");
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

} // namespace scmp
