#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>

#include "model/analytic.hh"
#include "model/profile_run.hh"
#include "sim/logging.hh"
#include "sweep/point_key.hh"

namespace scmp::sweep
{

namespace
{

SweepOptions globalDefaults;

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               Clock::now() - start)
        .count();
}

/**
 * Suffix an observability output path with a point's key (before
 * the extension) so concurrent workers write distinct files.
 */
std::string
pointedPath(const std::string &path, std::uint64_t key)
{
    std::string tag = "-" + keyHex(key);
    std::size_t dot = path.find_last_of('.');
    std::size_t slash = path.find_last_of('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
}

/**
 * Store key for the analytic prediction of a point: the cycle
 * key salted with the model name, so a screened record can never
 * be served where a cycle-accurate result is expected (and vice
 * versa on resume).
 */
std::uint64_t
analyticKey(std::uint64_t key)
{
    KeyHasher hasher;
    hasher.mix(key);
    hasher.mix("analytic");
    return hasher.value();
}

} // namespace

SweepModel
parseSweepModel(std::string_view text)
{
    if (text == "cycle")
        return SweepModel::Cycle;
    if (text == "analytic")
        return SweepModel::Analytic;
    if (text == "hybrid")
        return SweepModel::Hybrid;
    fatal("unknown sweep model '", std::string(text),
          "' (expected cycle, analytic or hybrid)");
}

const char *
sweepModelName(SweepModel model)
{
    switch (model) {
      case SweepModel::Cycle: return "cycle";
      case SweepModel::Analytic: return "analytic";
      case SweepModel::Hybrid: return "hybrid";
    }
    return "?";
}

void
setDefaultSweepOptions(const SweepOptions &options)
{
    globalDefaults = options;
}

const SweepOptions &
defaultSweepOptions()
{
    return globalDefaults;
}

SweepExecutor::SweepExecutor(SweepOptions options)
    : _options(std::move(options))
{
}

DesignGrid
SweepExecutor::run(const DesignSpace::WorkloadFactory &factory,
                   MachineConfig base,
                   const std::vector<std::uint64_t> &sccSizes,
                   const std::vector<int> &clusterSizes)
{
    auto sweepStart = Clock::now();

    // One throwaway instance for the name; construction is cheap
    // (workloads allocate in setup(), not their constructors).
    const std::string workloadName = factory()->name();

    struct Task
    {
        MachineConfig config;
        int procs;
        std::uint64_t sccBytes;
        std::uint64_t key;
    };
    std::vector<Task> tasks;
    tasks.reserve(clusterSizes.size() * sccSizes.size());
    for (int procs : clusterSizes) {
        for (std::uint64_t size : sccSizes) {
            Task task;
            task.config = base;
            task.config.cpusPerCluster = procs;
            task.config.scc.sizeBytes = size;
            task.procs = procs;
            task.sccBytes = size;
            task.key = pointKey(task.config, workloadName,
                                _options.scale);
            if (_options.obs.enabled) {
                obs::RecorderConfig obsConfig = _options.obs;
                if (!obsConfig.tracePath.empty())
                    obsConfig.tracePath = pointedPath(
                        obsConfig.tracePath, task.key);
                if (!obsConfig.seriesPath.empty())
                    obsConfig.seriesPath = pointedPath(
                        obsConfig.seriesPath, task.key);
                task.config.obs = obsConfig;
            }
            tasks.push_back(std::move(task));
        }
    }

    _stats = SweepRunStats{};
    _stats.total = tasks.size();

    ResultStore store;
    if (!_options.resultsPath.empty())
        store.open(_options.resultsPath, _options.resume);

    // Analytic screen (analytic/hybrid): one functional profiling
    // pass at the grid's widest cluster — the scope layout every
    // grouping on the axis can be derived from — then a
    // microseconds-per-point evaluation of the whole grid.
    std::vector<RunResult> predicted;
    std::vector<char> runCycle(
        tasks.size(), _options.model != SweepModel::Analytic);
    if (_options.model != SweepModel::Cycle && !tasks.empty()) {
        auto profileStart = Clock::now();
        MachineConfig profConfig = base;
        profConfig.cpusPerCluster = *std::max_element(
            clusterSizes.begin(), clusterSizes.end());
        auto workload = factory();
        workload->reseed(pointKey(profConfig, workloadName,
                                  _options.scale));
        model::ProfileRunOptions profileOptions;
        profileOptions.sampleShift = _options.profileSampleShift;
        profileOptions.maxSamples = _options.profileMaxSamples;
        model::ReuseProfile profile = model::profileWorkload(
            profConfig, *workload, profileOptions);
        _stats.profileMs = msSince(profileStart);

        model::AnalyticEvaluator evaluator(profile);
        auto evalStart = Clock::now();
        predicted.resize(tasks.size());
        for (std::size_t i = 0; i < tasks.size(); ++i)
            predicted[i] = evaluator.evaluate(tasks[i].config);
        _stats.analyticMs = msSince(evalStart);
        _stats.screened = tasks.size();

        if (_options.model == SweepModel::Hybrid) {
            // Only the analytically best K points earn the
            // cycle-accurate treatment; the rest keep their
            // predictions.
            std::size_t topK =
                _options.topK > 0
                    ? (std::size_t)_options.topK
                    : std::max<std::size_t>(3, tasks.size() / 4);
            topK = std::min(topK, tasks.size());
            std::vector<std::size_t> order(tasks.size());
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(
                order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                    return predicted[a].cycles <
                           predicted[b].cycles;
                });
            std::fill(runCycle.begin(), runCycle.end(), 0);
            for (std::size_t k = 0; k < topK; ++k)
                runCycle[order[k]] = 1;
        }
        if (_options.verbose) {
            inform("sweep: ", workloadName, " analytic screen — ",
                   tasks.size(), " points from one ",
                   _stats.profileMs, " ms profile pass (",
                   _stats.analyticMs, " ms to evaluate)");
        }
    }

    // Partition the grid into screened points (served from the
    // analytic predictions), stored points (served immediately)
    // and pending points (dealt to the workers).
    std::vector<DesignPoint> results(tasks.size());
    std::vector<std::size_t> pending;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &task = tasks[i];
        if (!runCycle[i]) {
            results[i].cpusPerCluster = task.procs;
            results[i].sccBytes = task.sccBytes;
            results[i].result = predicted[i];
            if (store.isOpen()) {
                std::uint64_t screenKey = analyticKey(task.key);
                if (!(_options.resume && store.find(screenKey))) {
                    StoredPoint record;
                    record.key = screenKey;
                    record.workload = workloadName;
                    record.scale = _options.scale;
                    record.cpusPerCluster = task.procs;
                    record.sccBytes = task.sccBytes;
                    record.model = "analytic";
                    record.jobs = 1;  // the screen is serial
                    record.result = predicted[i];
                    record.wallMs =
                        _stats.analyticMs / (double)tasks.size();
                    store.append(record);
                }
            }
            continue;
        }
        const StoredPoint *stored =
            _options.resume && store.isOpen() ? store.find(task.key)
                                              : nullptr;
        if (stored) {
            fatal_if(stored->cpusPerCluster != task.procs ||
                         stored->sccBytes != task.sccBytes ||
                         stored->workload != workloadName,
                     "results file '", _options.resultsPath,
                     "' record ", keyHex(task.key),
                     " does not match its key's configuration ",
                     "(key collision or corrupt store)");
            results[i].cpusPerCluster = task.procs;
            results[i].sccBytes = task.sccBytes;
            results[i].result = stored->result;
            ++_stats.reused;
        } else {
            pending.push_back(i);
        }
    }
    if (_options.verbose && _stats.reused > 0) {
        inform("sweep: resuming ", workloadName, " — ",
               _stats.reused, "/", tasks.size(),
               " points already in '", _options.resultsPath, "'");
    }

    const std::size_t toCompute = pending.size();
    std::atomic<std::size_t> completed{0};
    auto computeStart = Clock::now();

    // Resolve the worker count up front so each stored record can
    // carry the job count that actually produced it.
    int jobs = _options.jobs;
    if (jobs <= 0)
        jobs = (int)std::thread::hardware_concurrency();
    if (jobs < 1)
        jobs = 1;
    if ((std::size_t)jobs > pending.size())
        jobs = (int)pending.size();
    if (jobs < 1)
        jobs = 1;
    _stats.jobs = jobs;

    auto runOne = [&](std::size_t i) {
        const Task &task = tasks[i];
        auto workload = factory();
        // Hand the point its deterministic identity before setup;
        // combined with the fresh Machine/Arena/Engine below this
        // makes the point's result independent of which host
        // thread runs it and in what order.
        workload->reseed(task.key);

        std::ostringstream statsJson;
        auto pointStart = Clock::now();
        RunResult result = runParallel(
            task.config, *workload, nullptr, nullptr,
            _options.attachStats ? &statsJson : nullptr);
        double wallMs = msSince(pointStart);

        results[i].cpusPerCluster = task.procs;
        results[i].sccBytes = task.sccBytes;
        results[i].result = result;

        if (store.isOpen()) {
            StoredPoint record;
            record.key = task.key;
            record.workload = workloadName;
            record.scale = _options.scale;
            record.cpusPerCluster = task.procs;
            record.sccBytes = task.sccBytes;
            record.jobs = jobs;
            record.result = result;
            record.wallMs = wallMs;
            record.statsJson = statsJson.str();
            record.series = result.obsSeries;
            store.append(record);
        }

        std::size_t doneCount =
            completed.fetch_add(1, std::memory_order_relaxed) + 1;
        if (_options.verbose) {
            double elapsedS = msSince(computeStart) / 1000.0;
            double etaS = doneCount < toCompute
                              ? elapsedS / (double)doneCount *
                                    (double)(toCompute - doneCount)
                              : 0.0;
            inform("sweep ", doneCount, "/", toCompute, ": ",
                   workloadName, " ", task.procs, "P/cluster ",
                   sizeString(task.sccBytes), " -> ",
                   result.cycles, " cycles, rdMiss=",
                   result.readMissRate, " (", wallMs, " ms, ETA ",
                   etaS, " s)");
        }
    };

    if (jobs <= 1) {
        // Serial reference path — same runOne, same order the old
        // serial sweep used.
        for (std::size_t i : pending)
            runOne(i);
    } else {
        // Work-stealing pool: each worker owns a deque dealt
        // round-robin; it pops its own work from the front and
        // steals from the back of the busiest-looking victim when
        // it runs dry. Stealing from the opposite end keeps owner
        // and thief off the same cache lines and the same grid
        // region (long-running points cluster by coordinates).
        struct WorkQueue
        {
            std::mutex mutex;
            std::deque<std::size_t> tasks;
        };
        std::vector<WorkQueue> queues(jobs);
        for (std::size_t k = 0; k < pending.size(); ++k)
            queues[k % jobs].tasks.push_back(pending[k]);

        auto worker = [&](int self) {
            for (;;) {
                std::size_t task = 0;
                bool got = false;
                {
                    WorkQueue &own = queues[self];
                    std::lock_guard<std::mutex> lock(own.mutex);
                    if (!own.tasks.empty()) {
                        task = own.tasks.front();
                        own.tasks.pop_front();
                        got = true;
                    }
                }
                for (int step = 1; !got && step < jobs; ++step) {
                    WorkQueue &victim =
                        queues[(self + step) % jobs];
                    std::lock_guard<std::mutex> lock(victim.mutex);
                    if (!victim.tasks.empty()) {
                        task = victim.tasks.back();
                        victim.tasks.pop_back();
                        got = true;
                    }
                }
                if (!got)
                    return;  // every queue is empty — all done
                runOne(task);
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(jobs);
        for (int w = 0; w < jobs; ++w)
            threads.emplace_back(worker, w);
        for (auto &thread : threads)
            thread.join();
    }

    _stats.computed = toCompute;
    _stats.wallMs = msSince(sweepStart);
    if (_options.verbose) {
        std::size_t cyclePoints = _stats.computed + _stats.reused;
        std::size_t served = _stats.screened > cyclePoints
                                 ? _stats.screened - cyclePoints
                                 : 0;
        inform("sweep: ", workloadName, " done — ",
               _stats.computed, " computed, ", _stats.reused,
               " reused, ", served, " screened, ",
               _stats.wallMs / 1000.0, " s");
    }

    DesignGrid grid;
    for (auto &point : results)
        grid.add(std::move(point));
    return grid;
}

} // namespace scmp::sweep

namespace scmp
{

// Defined here (not in core/design_space.cc) so the core library
// stays free of the executor; see the header comment.
DesignGrid
DesignSpace::sweep(const WorkloadFactory &factory,
                   MachineConfig base,
                   const std::vector<std::uint64_t> &sccSizes,
                   const std::vector<int> &clusterSizes,
                   bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;
    sweep::SweepExecutor executor(options);
    return executor.run(factory, base, sccSizes, clusterSizes);
}

std::vector<NetPoint>
DesignSpace::netScalingSweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<int> &clusterCounts,
    const std::vector<NetTopology> &topologies, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<NetPoint> points;
    points.reserve(clusterCounts.size() * topologies.size());
    for (NetTopology topology : topologies) {
        for (int clusters : clusterCounts) {
            MachineConfig config = base;
            config.numClusters = clusters;
            config.net.topology = topology;
            std::uint64_t key = sweep::pointKey(
                config, workloadName, options.scale);

            NetPoint point;
            point.clusters = clusters;
            point.topology = topology;

            const sweep::StoredPoint *stored =
                options.resume && store.isOpen()
                    ? store.find(key)
                    : nullptr;
            if (stored) {
                fatal_if(
                    stored->workload != workloadName ||
                        stored->clusters != clusters ||
                        stored->net != netTopologyName(topology),
                    "results file '", options.resultsPath,
                    "' record ", sweep::keyHex(key),
                    " does not match its key's configuration ",
                    "(key collision or corrupt store)");
                point.result = stored->result;
                points.push_back(std::move(point));
                continue;
            }

            if (options.obs.enabled) {
                obs::RecorderConfig obsConfig = options.obs;
                if (!obsConfig.tracePath.empty())
                    obsConfig.tracePath = sweep::pointedPath(
                        obsConfig.tracePath, key);
                if (!obsConfig.seriesPath.empty())
                    obsConfig.seriesPath = sweep::pointedPath(
                        obsConfig.seriesPath, key);
                config.obs = obsConfig;
            }

            auto workload = factory();
            workload->reseed(key);
            std::ostringstream statsJson;
            auto pointStart = sweep::Clock::now();
            point.result = runParallel(
                config, *workload, nullptr, nullptr,
                options.attachStats ? &statsJson : nullptr);
            double wallMs = sweep::msSince(pointStart);

            if (store.isOpen()) {
                sweep::StoredPoint record;
                record.key = key;
                record.workload = workloadName;
                record.scale = options.scale;
                record.cpusPerCluster = config.cpusPerCluster;
                record.sccBytes = config.scc.sizeBytes;
                record.clusters = clusters;
                record.net = netTopologyName(topology);
                record.result = point.result;
                record.wallMs = wallMs;
                record.statsJson = statsJson.str();
                record.series = point.result.obsSeries;
                store.append(record);
            }
            if (options.verbose) {
                inform("net sweep: ", workloadName, " ",
                       netTopologyName(topology), " x", clusters,
                       " clusters -> ", point.result.cycles,
                       " cycles, busUtil=",
                       point.result.busUtilization, " (", wallMs,
                       " ms)");
            }
            points.push_back(std::move(point));
        }
    }
    return points;
}

std::vector<MemPoint>
DesignSpace::memScalingSweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<int> &channelCounts,
    const std::vector<int> &bankCounts,
    const std::vector<MemSched> &scheds, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<MemPoint> points;
    points.reserve(channelCounts.size() * bankCounts.size() *
                   scheds.size());
    for (MemSched sched : scheds) {
        for (int channels : channelCounts) {
            for (int banks : bankCounts) {
                MachineConfig config = base;
                config.dram.kind = MemBackendKind::Banked;
                config.dram.channels = channels;
                config.dram.banks = banks;
                config.dram.sched = sched;
                std::uint64_t key = sweep::pointKey(
                    config, workloadName, options.scale);

                MemPoint point;
                point.channels = channels;
                point.banks = banks;
                point.sched = sched;

                const sweep::StoredPoint *stored =
                    options.resume && store.isOpen()
                        ? store.find(key)
                        : nullptr;
                if (stored) {
                    fatal_if(
                        stored->workload != workloadName ||
                            stored->mem !=
                                memBackendName(config.dram.kind) ||
                            stored->channels != channels ||
                            stored->banks != banks ||
                            stored->memSched != memSchedName(sched),
                        "results file '", options.resultsPath,
                        "' record ", sweep::keyHex(key),
                        " does not match its key's configuration ",
                        "(key collision or corrupt store)");
                    point.result = stored->result;
                    points.push_back(std::move(point));
                    continue;
                }

                if (options.obs.enabled) {
                    obs::RecorderConfig obsConfig = options.obs;
                    if (!obsConfig.tracePath.empty())
                        obsConfig.tracePath = sweep::pointedPath(
                            obsConfig.tracePath, key);
                    if (!obsConfig.seriesPath.empty())
                        obsConfig.seriesPath = sweep::pointedPath(
                            obsConfig.seriesPath, key);
                    config.obs = obsConfig;
                }

                auto workload = factory();
                workload->reseed(key);
                std::ostringstream statsJson;
                auto pointStart = sweep::Clock::now();
                point.result = runParallel(
                    config, *workload, nullptr, nullptr,
                    options.attachStats ? &statsJson : nullptr);
                double wallMs = sweep::msSince(pointStart);

                if (store.isOpen()) {
                    sweep::StoredPoint record;
                    record.key = key;
                    record.workload = workloadName;
                    record.scale = options.scale;
                    record.cpusPerCluster = config.cpusPerCluster;
                    record.sccBytes = config.scc.sizeBytes;
                    record.mem = memBackendName(config.dram.kind);
                    record.channels = channels;
                    record.banks = banks;
                    record.memSched = memSchedName(sched);
                    record.result = point.result;
                    record.wallMs = wallMs;
                    record.statsJson = statsJson.str();
                    record.series = point.result.obsSeries;
                    store.append(record);
                }
                if (options.verbose) {
                    inform("mem sweep: ", workloadName, " ",
                           memSchedName(sched), " ", channels,
                           "ch x ", banks, " banks -> ",
                           point.result.cycles,
                           " cycles, rowHitRate=",
                           point.result.dramRowHitRate, " (",
                           wallMs, " ms)");
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

std::vector<ConsistencyPoint>
DesignSpace::consistencySweep(
    const WorkloadFactory &factory, MachineConfig base,
    const std::vector<ConsistencyModel> &models,
    const std::vector<NetTopology> &topologies,
    const std::vector<NetArbitration> &arbitrations, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<ConsistencyPoint> points;
    points.reserve(models.size() * topologies.size() *
                   arbitrations.size());
    for (ConsistencyModel model : models) {
        for (NetTopology topology : topologies) {
            for (std::size_t a = 0; a < arbitrations.size(); ++a) {
                // Arbitration is a split-bus knob; other fabrics
                // would evaluate the same design point once per
                // discipline, so take only the first for them.
                if (topology != NetTopology::Split && a > 0)
                    break;
                NetArbitration arbitration = arbitrations[a];

                MachineConfig config = base;
                config.consistency.model = model;
                config.net.topology = topology;
                config.net.arbitration = arbitration;
                std::uint64_t key = sweep::pointKey(
                    config, workloadName, options.scale);

                ConsistencyPoint point;
                point.model = model;
                point.topology = topology;
                point.arbitration = arbitration;

                const sweep::StoredPoint *stored =
                    options.resume && store.isOpen()
                        ? store.find(key)
                        : nullptr;
                if (stored) {
                    fatal_if(
                        stored->workload != workloadName ||
                            stored->net !=
                                netTopologyName(topology) ||
                            (model != ConsistencyModel::Sc &&
                             stored->consistency !=
                                 consistencyName(model)),
                        "results file '", options.resultsPath,
                        "' record ", sweep::keyHex(key),
                        " does not match its key's configuration ",
                        "(key collision or corrupt store)");
                    point.result = stored->result;
                    points.push_back(std::move(point));
                    continue;
                }

                if (options.obs.enabled) {
                    obs::RecorderConfig obsConfig = options.obs;
                    if (!obsConfig.tracePath.empty())
                        obsConfig.tracePath = sweep::pointedPath(
                            obsConfig.tracePath, key);
                    if (!obsConfig.seriesPath.empty())
                        obsConfig.seriesPath = sweep::pointedPath(
                            obsConfig.seriesPath, key);
                    config.obs = obsConfig;
                }

                auto workload = factory();
                workload->reseed(key);
                std::ostringstream statsJson;
                auto pointStart = sweep::Clock::now();
                point.result = runParallel(
                    config, *workload, nullptr, nullptr,
                    options.attachStats ? &statsJson : nullptr);
                double wallMs = sweep::msSince(pointStart);

                if (store.isOpen()) {
                    sweep::StoredPoint record;
                    record.key = key;
                    record.workload = workloadName;
                    record.scale = options.scale;
                    record.cpusPerCluster = config.cpusPerCluster;
                    record.sccBytes = config.scc.sizeBytes;
                    record.net = netTopologyName(topology);
                    record.consistency = consistencyName(model);
                    record.result = point.result;
                    record.wallMs = wallMs;
                    record.statsJson = statsJson.str();
                    record.series = point.result.obsSeries;
                    store.append(record);
                }
                if (options.verbose) {
                    inform("consistency sweep: ", workloadName,
                           " ", consistencyName(model), " ",
                           netTopologyName(topology), "/",
                           netArbitrationName(arbitration), " -> ",
                           point.result.cycles, " cycles (",
                           wallMs, " ms)");
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

std::vector<TmPoint>
DesignSpace::tmSweep(const WorkloadFactory &factory,
                     MachineConfig base,
                     const std::vector<TmMode> &modes,
                     const std::vector<NetTopology> &topologies,
                     const std::vector<int> &setSizes, bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<TmPoint> points;
    points.reserve(modes.size() * topologies.size() *
                   setSizes.size());
    for (TmMode mode : modes) {
        for (NetTopology topology : topologies) {
            for (std::size_t s = 0; s < setSizes.size(); ++s) {
                // Set size is a conflict-manager knob; --tm=off
                // would evaluate the same lock baseline once per
                // size, so take only the first for it.
                if (mode == TmMode::Off && s > 0)
                    break;
                int entries = setSizes[s];

                MachineConfig config = base;
                config.tm.mode = mode;
                config.tm.setEntries = entries;
                config.net.topology = topology;
                std::uint64_t key = sweep::pointKey(
                    config, workloadName, options.scale);

                TmPoint point;
                point.mode = mode;
                point.topology = topology;
                point.setEntries = entries;

                const sweep::StoredPoint *stored =
                    options.resume && store.isOpen()
                        ? store.find(key)
                        : nullptr;
                if (stored) {
                    fatal_if(
                        stored->workload != workloadName ||
                            stored->net !=
                                netTopologyName(topology) ||
                            (mode != TmMode::Off &&
                             (stored->tm != tmModeName(mode) ||
                              stored->tmEntries != entries)),
                        "results file '", options.resultsPath,
                        "' record ", sweep::keyHex(key),
                        " does not match its key's configuration ",
                        "(key collision or corrupt store)");
                    point.result = stored->result;
                    points.push_back(std::move(point));
                    continue;
                }

                if (options.obs.enabled) {
                    obs::RecorderConfig obsConfig = options.obs;
                    if (!obsConfig.tracePath.empty())
                        obsConfig.tracePath = sweep::pointedPath(
                            obsConfig.tracePath, key);
                    if (!obsConfig.seriesPath.empty())
                        obsConfig.seriesPath = sweep::pointedPath(
                            obsConfig.seriesPath, key);
                    config.obs = obsConfig;
                }

                auto workload = factory();
                workload->reseed(key);
                std::ostringstream statsJson;
                auto pointStart = sweep::Clock::now();
                point.result = runParallel(
                    config, *workload, nullptr, nullptr,
                    options.attachStats ? &statsJson : nullptr);
                double wallMs = sweep::msSince(pointStart);

                if (store.isOpen()) {
                    sweep::StoredPoint record;
                    record.key = key;
                    record.workload = workloadName;
                    record.scale = options.scale;
                    record.cpusPerCluster = config.cpusPerCluster;
                    record.sccBytes = config.scc.sizeBytes;
                    record.net = netTopologyName(topology);
                    record.tm = tmModeName(mode);
                    if (mode != TmMode::Off)
                        record.tmEntries = entries;
                    record.result = point.result;
                    record.wallMs = wallMs;
                    record.statsJson = statsJson.str();
                    record.series = point.result.obsSeries;
                    store.append(record);
                }
                if (options.verbose) {
                    inform("tm sweep: ", workloadName, " ",
                           tmModeName(mode), " ",
                           netTopologyName(topology),
                           mode == TmMode::Off
                               ? std::string()
                               : "/" + std::to_string(entries) +
                                     " entries",
                           " -> ", point.result.cycles,
                           " cycles, abortRate=",
                           point.result.tmAbortRate, " (", wallMs,
                           " ms)");
                }
                points.push_back(std::move(point));
            }
        }
    }
    return points;
}

std::vector<IsolationPoint>
DesignSpace::isolationSweep(const WorkloadFactory &factory,
                            MachineConfig base,
                            const std::vector<IsolationMode> &modes,
                            const std::vector<int> &domainCounts,
                            bool verbose)
{
    sweep::SweepOptions options = sweep::defaultSweepOptions();
    options.verbose = options.verbose || verbose;

    const std::string workloadName = factory()->name();

    sweep::ResultStore store;
    if (!options.resultsPath.empty())
        store.open(options.resultsPath, options.resume);

    std::vector<IsolationPoint> points;
    points.reserve(modes.size() * domainCounts.size());
    for (IsolationMode mode : modes) {
        for (std::size_t d = 0; d < domainCounts.size(); ++d) {
            // Domains are a mitigation knob; --isolation=none
            // would evaluate the same unmitigated baseline once
            // per count, so take only the first for it.
            if (mode == IsolationMode::None && d > 0)
                break;
            int domains = domainCounts[d];

            MachineConfig config = base;
            config.scc.sec.mode = mode;
            config.scc.sec.domains = domains;
            std::uint64_t key = sweep::pointKey(
                config, workloadName, options.scale);

            IsolationPoint point;
            point.mode = mode;
            point.domains = domains;

            const sweep::StoredPoint *stored =
                options.resume && store.isOpen() ? store.find(key)
                                                 : nullptr;
            if (stored) {
                fatal_if(
                    stored->workload != workloadName ||
                        (mode != IsolationMode::None &&
                         (stored->isolation !=
                              isolationModeName(mode) ||
                          stored->isolationDomains != domains)),
                    "results file '", options.resultsPath,
                    "' record ", sweep::keyHex(key),
                    " does not match its key's configuration ",
                    "(key collision or corrupt store)");
                point.result = stored->result;
                points.push_back(std::move(point));
                continue;
            }

            if (options.obs.enabled) {
                obs::RecorderConfig obsConfig = options.obs;
                if (!obsConfig.tracePath.empty())
                    obsConfig.tracePath = sweep::pointedPath(
                        obsConfig.tracePath, key);
                if (!obsConfig.seriesPath.empty())
                    obsConfig.seriesPath = sweep::pointedPath(
                        obsConfig.seriesPath, key);
                config.obs = obsConfig;
            }

            auto workload = factory();
            workload->reseed(key);
            std::ostringstream statsJson;
            auto pointStart = sweep::Clock::now();
            point.result = runParallel(
                config, *workload, nullptr, nullptr,
                options.attachStats ? &statsJson : nullptr);
            double wallMs = sweep::msSince(pointStart);

            if (store.isOpen()) {
                sweep::StoredPoint record;
                record.key = key;
                record.workload = workloadName;
                record.scale = options.scale;
                record.cpusPerCluster = config.cpusPerCluster;
                record.sccBytes = config.scc.sizeBytes;
                record.isolation = isolationModeName(mode);
                if (mode != IsolationMode::None)
                    record.isolationDomains = domains;
                record.result = point.result;
                record.wallMs = wallMs;
                record.statsJson = statsJson.str();
                record.series = point.result.obsSeries;
                store.append(record);
            }
            if (options.verbose) {
                inform("isolation sweep: ", workloadName, " ",
                       isolationModeName(mode),
                       mode == IsolationMode::None
                           ? std::string()
                           : "/" + std::to_string(domains) +
                                 " domains",
                       " -> ", point.result.cycles,
                       " cycles, leak=",
                       point.result.leakBitsPerEpoch,
                       " bits/epoch (", wallMs, " ms)");
            }
            points.push_back(std::move(point));
        }
    }
    return points;
}

} // namespace scmp
