#include "result_store.hh"

#include <unistd.h>

#include "sim/logging.hh"
#include "sweep/json.hh"
#include "sweep/point_key.hh"

namespace scmp::sweep
{

namespace
{

/** Schema version; bump when the record layout changes. */
constexpr std::uint64_t storeVersion = 1;

} // namespace

ResultStore::~ResultStore()
{
    close();
}

std::string
ResultStore::serialize(const StoredPoint &point)
{
    // Hand-assembled so field order is stable and human-scannable:
    // identity first, then the result payload.
    std::string out = "{\"v\":" + std::to_string(storeVersion);
    out += ",\"key\":" + jsonQuote(keyHex(point.key));
    out += ",\"workload\":" + jsonQuote(point.workload);
    out += ",\"scale\":" + jsonQuote(point.scale);
    out += ",\"procs\":" + std::to_string(point.cpusPerCluster);
    out += ",\"scc\":" + std::to_string(point.sccBytes);
    // Optional axes: omitted when unset so records from before
    // these fields existed serialize (and hash-compare) the same.
    if (point.clusters)
        out += ",\"clusters\":" + std::to_string(point.clusters);
    if (!point.net.empty())
        out += ",\"net\":" + jsonQuote(point.net);
    if (!point.mem.empty())
        out += ",\"mem\":" + jsonQuote(point.mem);
    if (point.channels)
        out += ",\"channels\":" + std::to_string(point.channels);
    if (point.banks)
        out += ",\"banks\":" + std::to_string(point.banks);
    if (!point.memSched.empty())
        out += ",\"memSched\":" + jsonQuote(point.memSched);
    if (!point.consistency.empty())
        out += ",\"consistency\":" + jsonQuote(point.consistency);
    if (!point.tm.empty())
        out += ",\"tm\":" + jsonQuote(point.tm);
    if (point.tmEntries)
        out += ",\"tmEntries\":" + std::to_string(point.tmEntries);
    if (!point.isolation.empty())
        out += ",\"isolation\":" + jsonQuote(point.isolation);
    if (point.isolationDomains)
        out += ",\"isolationDomains\":" +
               std::to_string(point.isolationDomains);
    if (!point.model.empty())
        out += ",\"model\":" + jsonQuote(point.model);
    if (point.jobs)
        out += ",\"jobs\":" + std::to_string(point.jobs);
    out += ",\"wallMs\":" + jsonNumber(point.wallMs);

    const RunResult &r = point.result;
    out += ",\"result\":{";
    out += "\"cycles\":" + std::to_string(r.cycles);
    out += ",\"instructions\":" + std::to_string(r.instructions);
    out += ",\"references\":" + std::to_string(r.references);
    out += ",\"readMissRate\":" + jsonNumber(r.readMissRate);
    out += ",\"missRate\":" + jsonNumber(r.missRate);
    out += ",\"invalidations\":" + std::to_string(r.invalidations);
    out += ",\"busTransactions\":" +
           std::to_string(r.busTransactions);
    out += ",\"busUtilization\":" + jsonNumber(r.busUtilization);
    out += std::string(",\"verified\":") +
           (r.verified ? "true" : "false");
    // Banked-DRAM metrics: the flat backend counts no fills, so
    // default records serialize byte-identically to before.
    if (r.dramFills) {
        out += ",\"dramFills\":" + std::to_string(r.dramFills);
        out += ",\"dramRowHitRate\":" + jsonNumber(r.dramRowHitRate);
    }
    // TM metrics: only a run that opened a transaction counts
    // commits or aborts, so every other record stays byte-identical.
    if (r.tmCommits || r.tmAborts) {
        out += ",\"tmCommits\":" + std::to_string(r.tmCommits);
        out += ",\"tmAborts\":" + std::to_string(r.tmAborts);
        out += ",\"tmFallbacks\":" + std::to_string(r.tmFallbacks);
        out += ",\"tmAbortRate\":" + jsonNumber(r.tmAbortRate);
    }
    // Server-scenario latency metrics: only the server workload
    // counts requests, so every other record stays byte-identical.
    if (r.requests) {
        out += ",\"requests\":" + std::to_string(r.requests);
        out += ",\"latencyP50\":" + jsonNumber(r.latencyP50);
        out += ",\"latencyP95\":" + jsonNumber(r.latencyP95);
        out += ",\"latencyP99\":" + jsonNumber(r.latencyP99);
        out += ",\"throughput\":" + jsonNumber(r.throughput);
    }
    // Side-channel metrics: only the prime+probe workload counts
    // epochs, so every other record stays byte-identical.
    if (r.secEpochs) {
        out += ",\"secEpochs\":" + std::to_string(r.secEpochs);
        out += ",\"probeAccuracy\":" +
               jsonNumber(r.secProbeAccuracy);
        out += ",\"chanceAccuracy\":" +
               jsonNumber(r.secChanceAccuracy);
        out += ",\"leakBitsPerEpoch\":" +
               jsonNumber(r.leakBitsPerEpoch);
    }
    out += "}";

    if (!point.statsJson.empty())
        out += ",\"stats\":" + point.statsJson;
    if (!point.series.empty())
        out += ",\"series\":" + point.series;
    out += "}";
    return out;
}

bool
ResultStore::deserialize(const std::string &line, StoredPoint &point,
                         std::string *error)
{
    Json doc;
    if (!Json::parse(line, doc, error))
        return false;

    auto missing = [&](const char *field) {
        if (error)
            *error = std::string("missing field '") + field + "'";
        return false;
    };

    const Json *v = doc.find("v");
    if (!v)
        return missing("v");
    if (v->asU64() != storeVersion) {
        if (error) {
            *error = "unsupported record version " +
                     std::to_string(v->asU64());
        }
        return false;
    }

    const Json *key = doc.find("key");
    if (!key)
        return missing("key");
    if (!parseKeyHex(key->asString(), point.key)) {
        if (error)
            *error = "malformed key '" + key->asString() + "'";
        return false;
    }

    const Json *workload = doc.find("workload");
    const Json *scale = doc.find("scale");
    const Json *procs = doc.find("procs");
    const Json *scc = doc.find("scc");
    const Json *wallMs = doc.find("wallMs");
    const Json *result = doc.find("result");
    if (!workload)
        return missing("workload");
    if (!scale)
        return missing("scale");
    if (!procs)
        return missing("procs");
    if (!scc)
        return missing("scc");
    if (!wallMs)
        return missing("wallMs");
    if (!result)
        return missing("result");

    point.workload = workload->asString();
    point.scale = scale->asString();
    point.cpusPerCluster = (int)procs->asU64();
    point.sccBytes = scc->asU64();
    const Json *clusters = doc.find("clusters");
    point.clusters = clusters ? (int)clusters->asU64() : 0;
    const Json *net = doc.find("net");
    point.net = net ? net->asString() : "";
    const Json *mem = doc.find("mem");
    point.mem = mem ? mem->asString() : "";
    const Json *channels = doc.find("channels");
    point.channels = channels ? (int)channels->asU64() : 0;
    const Json *banks = doc.find("banks");
    point.banks = banks ? (int)banks->asU64() : 0;
    const Json *memSched = doc.find("memSched");
    point.memSched = memSched ? memSched->asString() : "";

    const Json *consistency = doc.find("consistency");
    point.consistency = consistency ? consistency->asString() : "";
    const Json *tm = doc.find("tm");
    point.tm = tm ? tm->asString() : "";
    const Json *tmEntries = doc.find("tmEntries");
    point.tmEntries = tmEntries ? (int)tmEntries->asU64() : 0;
    const Json *isolation = doc.find("isolation");
    point.isolation = isolation ? isolation->asString() : "";
    const Json *isolationDomains = doc.find("isolationDomains");
    point.isolationDomains =
        isolationDomains ? (int)isolationDomains->asU64() : 0;
    const Json *model = doc.find("model");
    point.model = model ? model->asString() : "";
    const Json *jobs = doc.find("jobs");
    point.jobs = jobs ? (int)jobs->asU64() : 0;
    point.wallMs = wallMs->asDouble();

    RunResult &r = point.result;
    struct FieldU64
    {
        const char *name;
        std::uint64_t *slot;
    } u64Fields[] = {
        {"cycles", &r.cycles},
        {"instructions", &r.instructions},
        {"references", &r.references},
        {"invalidations", &r.invalidations},
        {"busTransactions", &r.busTransactions},
    };
    for (const auto &field : u64Fields) {
        const Json *value = result->find(field.name);
        if (!value)
            return missing(field.name);
        *field.slot = value->asU64();
    }
    struct FieldDouble
    {
        const char *name;
        double *slot;
    } doubleFields[] = {
        {"readMissRate", &r.readMissRate},
        {"missRate", &r.missRate},
        {"busUtilization", &r.busUtilization},
    };
    for (const auto &field : doubleFields) {
        const Json *value = result->find(field.name);
        if (!value)
            return missing(field.name);
        *field.slot = value->asDouble();
    }
    const Json *verified = result->find("verified");
    if (!verified)
        return missing("verified");
    r.verified = verified->asBool();
    // Optional dram fields (absent on flat-backend records).
    const Json *dramFills = result->find("dramFills");
    r.dramFills = dramFills ? dramFills->asU64() : 0;
    const Json *dramRowHitRate = result->find("dramRowHitRate");
    r.dramRowHitRate =
        dramRowHitRate ? dramRowHitRate->asDouble() : 0.0;
    // Optional TM fields (absent on non-transactional records).
    const Json *tmCommits = result->find("tmCommits");
    r.tmCommits = tmCommits ? tmCommits->asU64() : 0;
    const Json *tmAborts = result->find("tmAborts");
    r.tmAborts = tmAborts ? tmAborts->asU64() : 0;
    const Json *tmFallbacks = result->find("tmFallbacks");
    r.tmFallbacks = tmFallbacks ? tmFallbacks->asU64() : 0;
    const Json *tmAbortRate = result->find("tmAbortRate");
    r.tmAbortRate = tmAbortRate ? tmAbortRate->asDouble() : 0.0;
    // Optional server-scenario fields.
    const Json *requests = result->find("requests");
    r.requests = requests ? requests->asU64() : 0;
    struct OptDouble
    {
        const char *name;
        double *slot;
    } serverFields[] = {
        {"latencyP50", &r.latencyP50},
        {"latencyP95", &r.latencyP95},
        {"latencyP99", &r.latencyP99},
        {"throughput", &r.throughput},
    };
    for (const auto &field : serverFields) {
        const Json *value = result->find(field.name);
        *field.slot = value ? value->asDouble() : 0.0;
    }
    // Optional side-channel fields.
    const Json *secEpochs = result->find("secEpochs");
    r.secEpochs = secEpochs ? secEpochs->asU64() : 0;
    OptDouble secFields[] = {
        {"probeAccuracy", &r.secProbeAccuracy},
        {"chanceAccuracy", &r.secChanceAccuracy},
        {"leakBitsPerEpoch", &r.leakBitsPerEpoch},
    };
    for (const auto &field : secFields) {
        const Json *value = result->find(field.name);
        *field.slot = value ? value->asDouble() : 0.0;
    }

    const Json *stats = doc.find("stats");
    point.statsJson = stats ? stats->dump() : "";
    const Json *series = doc.find("series");
    point.series = series ? series->dump() : "";
    return true;
}

void
ResultStore::open(const std::string &path, bool loadExisting)
{
    panic_if(_file, "result store is already open");
    _path = path;

    long keepBytes = 0;
    if (loadExisting) {
        if (std::FILE *in = std::fopen(path.c_str(), "rb")) {
            std::string line;
            std::size_t lineNo = 0;
            for (;;) {
                int c = std::fgetc(in);
                if (c != EOF && c != '\n') {
                    line.push_back((char)c);
                    continue;
                }
                bool atEof = (c == EOF);
                ++lineNo;
                if (line.empty()) {
                    // Blank line (or clean end of file).
                    keepBytes = std::ftell(in);
                    if (atEof)
                        break;
                    line.clear();
                    continue;
                }
                StoredPoint point;
                std::string error;
                if (deserialize(line, point, &error)) {
                    _records[point.key] = std::move(point);
                    keepBytes = std::ftell(in);
                    if (atEof)
                        break;
                } else if (atEof) {
                    // A newline-less partial final line is what a
                    // killed run leaves behind: drop it and let the
                    // sweep recompute that point.
                    warn("results file '", path, "': discarding ",
                         "partial final record (line ", lineNo,
                         ", ", error, ")");
                    break;
                } else {
                    fatal("results file '", path, "' is corrupt ",
                          "at line ", lineNo, ": ", error,
                          " — refusing to resume from it");
                }
                line.clear();
            }
            std::fclose(in);
            // Trim any discarded partial tail so appended records
            // start on a fresh line.
            if (::truncate(path.c_str(), keepBytes) != 0) {
                fatal("cannot truncate partial record from '", path,
                      "'");
            }
        }
        _file = std::fopen(path.c_str(), "ab");
    } else {
        _file = std::fopen(path.c_str(), "wb");
    }
    fatal_if(!_file, "cannot open results file '", path,
             "' for writing");
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _records.size();
}

const StoredPoint *
ResultStore::find(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _records.find(key);
    return it == _records.end() ? nullptr : &it->second;
}

void
ResultStore::append(const StoredPoint &point)
{
    std::string line = serialize(point) + "\n";
    std::lock_guard<std::mutex> lock(_mutex);
    _records[point.key] = point;
    if (!_file)
        return;
    panic_if(std::fwrite(line.data(), 1, line.size(), _file) !=
                 line.size(),
             "short write to results file '", _path,
             "' (disk full?)");
    panic_if(std::fflush(_file) != 0,
             "cannot flush results file '", _path, "'");
}

void
ResultStore::close()
{
    if (!_file)
        return;
    panic_if(std::fclose(_file) != 0,
             "cannot close results file '", _path, "'");
    _file = nullptr;
}

} // namespace scmp::sweep
