/**
 * @file
 * Persistent design-point results (the sweep's memoization layer).
 *
 * Every completed design point is appended to a JSON-lines file as
 * one self-contained record keyed by the point's stable hash (see
 * point_key.hh). A restarted sweep reloads the file and skips every
 * point whose key it already holds — one execution, many reuses,
 * the same philosophy as the trace-replay substrate in src/trace/.
 *
 * Durability model: records are appended and flushed one at a time,
 * so a killed run loses at most the record being written. On reload
 * a malformed FINAL line is treated as exactly that crash artifact:
 * it is reported, truncated away, and its point is recomputed. A
 * malformed line anywhere else means the file is corrupt (bad disk,
 * concurrent writers, hand editing) and is a fatal error — quietly
 * dropping completed work or serving wrong results is worse than
 * stopping.
 */

#ifndef SCMP_SWEEP_RESULT_STORE_HH
#define SCMP_SWEEP_RESULT_STORE_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "core/parallel_run.hh"

namespace scmp::sweep
{

/** One persisted design-point record. */
struct StoredPoint
{
    std::uint64_t key = 0;      //!< pointKey() of the record
    std::string workload;       //!< workload name
    std::string scale;          //!< run scale tag (quick/default/full)
    int cpusPerCluster = 0;
    std::uint64_t sccBytes = 0;
    /**
     * Optional axes (serialized only when set, so stores written
     * before they existed still parse): cluster count for scaling
     * studies, interconnect topology name for src/net sweeps,
     * memory backend + geometry for src/dram sweeps.
     */
    int clusters = 0;
    std::string net;
    std::string mem;
    int channels = 0;
    int banks = 0;
    std::string memSched;
    /** Consistency model name for src/mem/store_buffer sweeps. */
    std::string consistency;
    /** TM conflict manager name for src/tm sweeps. */
    std::string tm;
    int tmEntries = 0;
    /** Isolation mode name + domain count for src/sec sweeps. */
    std::string isolation;
    int isolationDomains = 0;
    /**
     * Evaluation model that produced the record ("analytic" for
     * screened points; empty = cycle-accurate, the historical
     * default). Analytic records also carry a salted key so they
     * can never be served where a cycle-accurate result is
     * expected.
     */
    std::string model;
    /** Worker threads the producing sweep ran with (0 = unknown). */
    int jobs = 0;
    RunResult result;
    double wallMs = 0;          //!< host wall time of the simulation
    std::string statsJson;      //!< optional hierarchical stats dump
    /** Optional interval-metrics series (src/obs columnar JSON). */
    std::string series;
};

/** The JSON-lines store behind --results / --resume. */
class ResultStore
{
  public:
    ResultStore() = default;
    ~ResultStore();

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Open @p path for appending.
     *
     * @param loadExisting Resume mode: parse any existing records
     *        first (fatal on corruption, see file comment). When
     *        false an existing file is overwritten.
     */
    void open(const std::string &path, bool loadExisting);

    /** @return true when open() has been called. */
    bool isOpen() const { return _file != nullptr; }

    /** Records loaded from disk plus records appended since. */
    std::size_t size() const;

    /** @return the stored record for @p key, or nullptr. */
    const StoredPoint *find(std::uint64_t key) const;

    /** Append one record and flush it to disk. Thread-safe. */
    void append(const StoredPoint &point);

    /** Flush and close the file (implied by destruction). */
    void close();

    /** Serialize one record as a single JSON line (no newline). */
    static std::string serialize(const StoredPoint &point);

    /**
     * Parse one record line.
     * @return false (with @p error filled) on malformed input.
     */
    static bool deserialize(const std::string &line,
                            StoredPoint &point, std::string *error);

  private:
    std::FILE *_file = nullptr;
    std::string _path;
    mutable std::mutex _mutex;
    std::map<std::uint64_t, StoredPoint> _records;
};

} // namespace scmp::sweep

#endif // SCMP_SWEEP_RESULT_STORE_HH
