/**
 * @file
 * Host-parallel, resumable design-space sweep execution.
 *
 * Every figure and table in the paper is a grid sweep over
 * {processors per cluster} x {SCC size}, and each grid point is a
 * fully self-contained simulation (fresh Machine, fresh workload,
 * fresh Arena, deterministic engine). The SweepExecutor exploits
 * that independence: a work-stealing pool of host threads runs
 * points concurrently, a ResultStore persists each completed point
 * keyed by its stable configuration hash, and a resumed sweep
 * skips every point the store already holds.
 *
 * Correctness bar: a sweep with --jobs=N produces bit-identical
 * RunResults to the serial sweep. Each point's inputs are functions
 * only of its own configuration (the executor hands the point its
 * config-hash seed before setup; nothing is shared across points),
 * so results cannot depend on host scheduling order.
 */

#ifndef SCMP_SWEEP_SWEEP_HH
#define SCMP_SWEEP_SWEEP_HH

#include <string>
#include <string_view>
#include <vector>

#include "core/design_space.hh"
#include "obs/recorder.hh"
#include "sweep/result_store.hh"

namespace scmp::sweep
{

/**
 * Evaluation model for a grid sweep (--model=cycle|analytic|hybrid).
 *
 * Cycle runs every point through the cycle-accurate machine — the
 * reference mode, and the only one whose results are exact.
 * Analytic profiles the workload's reuse-distance histograms once
 * (src/model) and predicts every point from that single pass —
 * orders of magnitude faster, within the model's error bars.
 * Hybrid screens the whole grid analytically, ranks points by
 * predicted cycles, and runs only the top-K frontier
 * cycle-accurately — fast where the grid is boring, exact where it
 * matters.
 */
enum class SweepModel
{
    Cycle,
    Analytic,
    Hybrid,
};

/** Parse "cycle"/"analytic"/"hybrid"; fatal on anything else. */
SweepModel parseSweepModel(std::string_view text);

/** The canonical lowercase name of @p model. */
const char *sweepModelName(SweepModel model);

/** Execution knobs for one sweep (--jobs/--results/--resume). */
struct SweepOptions
{
    /** Worker threads; 1 = serial, 0 = one per hardware thread. */
    int jobs = 1;

    /** Evaluation model (see SweepModel). */
    SweepModel model = SweepModel::Cycle;

    /**
     * Hybrid mode: number of analytically top-ranked points that
     * get the cycle-accurate treatment. 0 = auto, max(3, total/4).
     */
    int topK = 0;

    /**
     * Profiling-pass sampling knobs (analytic/hybrid): SHARDS
     * sample shift (rate 1/2^shift, 0 = exact) and histogram
     * recording cap (0 = unbounded). See model::ProfileRunOptions.
     */
    std::uint32_t profileSampleShift = 0;
    std::uint64_t profileMaxSamples = 0;

    /** JSON-lines result store path; empty = no persistence. */
    std::string resultsPath;

    /**
     * Reload resultsPath and skip already-stored points. Without
     * this flag an existing results file is overwritten.
     */
    bool resume = false;

    /** inform() per-point progress with wall time and ETA. */
    bool verbose = false;

    /** Scale tag mixed into each point's store key. */
    std::string scale = "default";

    /**
     * Attach each point's hierarchical statistics tree (as JSON,
     * see stats::Group::dumpJson) to its store record.
     */
    bool attachStats = false;

    /**
     * Observability (src/obs) applied to every point's machine.
     * File paths are suffixed with each point's key so concurrent
     * workers never collide; with captureSeries set, each point's
     * interval-metrics series lands in its store record. Never part
     * of the point key — resumed sweeps match either way.
     */
    obs::RecorderConfig obs;
};

/** Counters describing what one run() actually did. */
struct SweepRunStats
{
    std::size_t total = 0;     //!< grid points requested
    std::size_t computed = 0;  //!< simulated this run
    std::size_t reused = 0;    //!< served from the result store
    std::size_t screened = 0;  //!< evaluated analytically
    double wallMs = 0;         //!< whole-sweep host wall time
    double profileMs = 0;      //!< reuse-profiling pass wall time
    double analyticMs = 0;     //!< analytic evaluation wall time
    int jobs = 0;              //!< worker threads actually used
};

/**
 * Process-wide default options, set once by the bench/example
 * command-line plumbing so every DesignSpace::sweep call in the
 * binary honours --jobs/--results/--resume without threading the
 * options through each call site. Not thread-safe; set before
 * sweeping.
 */
void setDefaultSweepOptions(const SweepOptions &options);
const SweepOptions &defaultSweepOptions();

/** Work-stealing executor over one design-point grid. */
class SweepExecutor
{
  public:
    explicit SweepExecutor(SweepOptions options);

    /**
     * Evaluate base x sccSizes x clusterSizes (cluster sizes outer,
     * like the serial sweep always did) and return the completed
     * grid. May be called repeatedly; runStats() describes the most
     * recent run.
     */
    DesignGrid run(const DesignSpace::WorkloadFactory &factory,
                   MachineConfig base,
                   const std::vector<std::uint64_t> &sccSizes,
                   const std::vector<int> &clusterSizes);

    const SweepRunStats &runStats() const { return _stats; }
    const SweepOptions &options() const { return _options; }

  private:
    SweepOptions _options;
    SweepRunStats _stats;
};

} // namespace scmp::sweep

#endif // SCMP_SWEEP_SWEEP_HH
