#include "point_key.hh"

#include <charconv>
#include <cstdio>

namespace scmp::sweep
{

KeyHasher &
KeyHasher::mix(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        _hash ^= (value >> (8 * i)) & 0xff;
        _hash *= prime;
    }
    return *this;
}

KeyHasher &
KeyHasher::mix(std::string_view text)
{
    // Length first so {"ab","c"} and {"a","bc"} hash differently.
    mix((std::uint64_t)text.size());
    for (char c : text) {
        _hash ^= (unsigned char)c;
        _hash *= prime;
    }
    return *this;
}

std::uint64_t
hashMachineConfig(const MachineConfig &config)
{
    KeyHasher h;
    h.mix((std::uint64_t)config.numClusters);
    h.mix((std::uint64_t)config.cpusPerCluster);
    h.mix((std::uint64_t)config.organization);
    h.mix(config.privateCacheBytes);

    const SccParams &scc = config.scc;
    h.mix(scc.sizeBytes);
    h.mix(scc.lineBytes);
    h.mix(scc.assoc);
    h.mix(scc.banksPerCpu);
    h.mix(scc.bankOccupancy);
    h.mix((std::uint64_t)scc.stallOnUpgrade);
    h.mix((std::uint64_t)scc.protocol);

    const BusParams &bus = config.bus;
    h.mix(bus.memoryLatency);
    h.mix(bus.transferOccupancy);
    h.mix(bus.addressOccupancy);

    // The interconnect axis is hashed ONLY off the default atomic
    // topology: with the atomic bus the other NetParams fields have
    // no effect on the simulation, and every store/fixture key
    // captured before src/net existed must keep resolving.
    const NetParams &net = config.net;
    if (net.topology != NetTopology::Atomic) {
        h.mix((std::uint64_t)net.topology);
        h.mix((std::uint64_t)net.segments);
        h.mix((std::uint64_t)net.arbitration);
        h.mix(net.arbLatency);
        // A bounded snoop filter changes tree timing, but 0
        // (unbounded) is the pre-existing behaviour: hash it only
        // when set so every earlier tree key keeps resolving.
        if (net.snoopFilterCapacity)
            h.mix(net.snoopFilterCapacity);
    }

    // Same discipline for the memory backend: with the flat default
    // DramParams is inert, and every store/fixture key captured
    // before src/dram existed must keep resolving.
    const DramParams &dram = config.dram;
    if (dram.kind != MemBackendKind::Flat) {
        h.mix((std::uint64_t)dram.kind);
        h.mix((std::uint64_t)dram.channels);
        h.mix((std::uint64_t)dram.banks);
        h.mix((std::uint64_t)dram.sched);
        h.mix(dram.rowBytes);
        h.mix(dram.numaRemotePenalty);
        h.mix(dram.timing.rowHit);
        h.mix(dram.timing.rowMiss);
        h.mix(dram.timing.rowConflict);
        h.mix(dram.timing.burst);
    }

    // And for the consistency model: sequential consistency is the
    // pre-existing behaviour (ConsistencyParams is inert under Sc),
    // so the axis is hashed only when weak ordering is selected —
    // every key captured before src/mem/store_buffer existed keeps
    // resolving.
    const ConsistencyParams &consistency = config.consistency;
    if (consistency.model != ConsistencyModel::Sc) {
        h.mix((std::uint64_t)consistency.model);
        h.mix((std::uint64_t)consistency.storeBufferEntries);
    }

    // And for transactional memory: --tm=off leaves TmParams inert
    // (no manager is even built), so the axis is hashed only when a
    // conflict manager is selected — every key captured before
    // src/tm existed keeps resolving.
    const TmParams &tm = config.tm;
    if (tm.mode != TmMode::Off) {
        h.mix((std::uint64_t)tm.mode);
        h.mix((std::uint64_t)tm.setEntries);
        h.mix((std::uint64_t)tm.maxAborts);
        h.mix((std::uint64_t)tm.backoffBase);
        h.mix(tm.beginCost);
        h.mix(tm.commitCost);
        h.mix(tm.abortCost);
    }

    // And for the isolation axis: --isolation=none leaves SecParams
    // inert (TagArray follows the pre-axis placement exactly), so
    // the axis is hashed only when a mitigation is selected — every
    // key captured before src/sec existed keeps resolving.
    const SecParams &sec = config.scc.sec;
    if (sec.mode != IsolationMode::None) {
        h.mix((std::uint64_t)sec.mode);
        h.mix((std::uint64_t)sec.domains);
        if (sec.mode == IsolationMode::Rand) {
            h.mix(sec.rekeyFills);
            h.mix(sec.key);
        }
    }

    const ICacheParams &icache = config.icache;
    h.mix((std::uint64_t)icache.enabled);
    h.mix(icache.sizeBytes);
    h.mix(icache.lineBytes);
    h.mix(icache.bytesPerInstr);

    const EngineOptions &engine = config.engine;
    h.mix((std::uint64_t)engine.slackWindow);
    h.mix((std::uint64_t)engine.yieldLatency);
    h.mix((std::uint64_t)engine.stackBytes);
    h.mix(engine.barrierOverhead);
    h.mix(engine.contextSwitchCost);

    h.mix((std::uint64_t)config.arenaBytes);

    // checkCoherence / checkWalkInterval and the obs recorder
    // config are deliberately NOT hashed: both observe the
    // simulation without altering any simulated result, so a
    // checked/observed and a plain run of the same configuration
    // are the same design point and may serve each other's stored
    // records.
    return h.value();
}

std::uint64_t
pointKey(const MachineConfig &config, std::string_view workload,
         std::string_view scale)
{
    KeyHasher h;
    h.mix(hashMachineConfig(config));
    h.mix(workload);
    h.mix(scale);
    return h.value();
}

std::string
keyHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)key);
    return buf;
}

bool
parseKeyHex(const std::string &text, std::uint64_t &key)
{
    if (text.size() != 16)
        return false;
    auto res = std::from_chars(text.data(),
                               text.data() + text.size(), key, 16);
    return res.ec == std::errc() &&
           res.ptr == text.data() + text.size();
}

} // namespace scmp::sweep
