/**
 * @file
 * A minimal JSON value model for the sweep result store.
 *
 * The store's records are JSON-lines; this module provides just
 * enough JSON to write them losslessly and read them back: objects,
 * arrays, strings, booleans, null, and numbers that keep 64-bit
 * integers exact (cycle counts exceed a double's 53-bit mantissa on
 * long runs) while round-tripping doubles bit-exactly via
 * max_digits10 formatting. Not a general-purpose JSON library —
 * no unicode escapes beyond pass-through, no streaming.
 */

#ifndef SCMP_SWEEP_JSON_HH
#define SCMP_SWEEP_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace scmp::sweep
{

/** One parsed JSON value (a small tagged union). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Unsigned,   //!< integral literal without sign/fraction
        Number,     //!< any other numeric literal
        String,
        Array,
        Object,
    };

    Json() = default;

    /// @name Constructors for each value kind.
    /// @{
    static Json null();
    static Json boolean(bool v);
    static Json unsignedInt(std::uint64_t v);
    static Json number(double v);
    static Json string(std::string v);
    static Json array();
    static Json object();
    /// @}

    Type type() const { return _type; }

    /// @name Typed readers; panic on a type mismatch.
    /// @{
    bool asBool() const;
    /** Unsigned integer; accepts an integral Number too. */
    std::uint64_t asU64() const;
    /** Double; accepts Unsigned too. */
    double asDouble() const;
    const std::string &asString() const;
    const std::vector<Json> &asArray() const;
    const std::map<std::string, Json> &asObject() const;
    /// @}

    /** Object member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Object/array writers (value must already be that type). */
    void set(const std::string &key, Json value);
    void push(Json value);

    /** Serialize compactly (single line, no trailing newline). */
    std::string dump() const;

    /**
     * Parse one complete JSON document.
     * @return false (with @p error filled) on malformed input or
     *         trailing garbage.
     */
    static bool parse(const std::string &text, Json &out,
                      std::string *error);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    std::uint64_t _uint = 0;
    double _number = 0;
    std::string _string;
    std::vector<Json> _array;
    std::map<std::string, Json> _object;
};

/** Escape a string for inclusion in JSON output (adds quotes). */
std::string jsonQuote(const std::string &text);

/**
 * Format a double so it round-trips bit-exactly (max_digits10).
 * Non-finite values become null, which JSON cannot express.
 */
std::string jsonNumber(double value);

} // namespace scmp::sweep

#endif // SCMP_SWEEP_JSON_HH
