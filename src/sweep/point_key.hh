/**
 * @file
 * Stable identity for one design point.
 *
 * The sweep result store is keyed by a 64-bit FNV-1a hash of every
 * field of the MachineConfig plus the workload name and run scale.
 * The hash is computed from explicitly serialized field values (not
 * raw struct bytes), so it is stable across compilers, padding
 * layouts and repository versions as long as the configuration
 * itself is unchanged — the property resume correctness rests on.
 * Any new MachineConfig field MUST be added to hashMachineConfig,
 * otherwise two genuinely different configurations could collide
 * on the same key and resume would serve the wrong result.
 */

#ifndef SCMP_SWEEP_POINT_KEY_HH
#define SCMP_SWEEP_POINT_KEY_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "core/machine.hh"

namespace scmp::sweep
{

/** Incremental FNV-1a accumulator over typed field values. */
class KeyHasher
{
  public:
    KeyHasher &mix(std::uint64_t value);
    KeyHasher &mix(std::string_view text);

    std::uint64_t value() const { return _hash; }

  private:
    static constexpr std::uint64_t offsetBasis =
        0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t _hash = offsetBasis;
};

/** Hash every field of a machine configuration. */
std::uint64_t hashMachineConfig(const MachineConfig &config);

/**
 * The store key for one design point: configuration x workload x
 * scale. Also used as the point's deterministic RNG seed (see
 * ParallelWorkload::reseed).
 */
std::uint64_t pointKey(const MachineConfig &config,
                       std::string_view workload,
                       std::string_view scale);

/** 16-digit lowercase hex rendering of a key. */
std::string keyHex(std::uint64_t key);

/** Parse keyHex output back; false on malformed input. */
bool parseKeyHex(const std::string &text, std::uint64_t &key);

} // namespace scmp::sweep

#endif // SCMP_SWEEP_POINT_KEY_HH
