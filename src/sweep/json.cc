#include "json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace scmp::sweep
{

Json
Json::null()
{
    return Json();
}

Json
Json::boolean(bool v)
{
    Json j;
    j._type = Type::Bool;
    j._bool = v;
    return j;
}

Json
Json::unsignedInt(std::uint64_t v)
{
    Json j;
    j._type = Type::Unsigned;
    j._uint = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j._type = Type::Number;
    j._number = v;
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j._type = Type::String;
    j._string = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j._type = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j._type = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    panic_if(_type != Type::Bool, "JSON value is not a boolean");
    return _bool;
}

std::uint64_t
Json::asU64() const
{
    if (_type == Type::Unsigned)
        return _uint;
    if (_type == Type::Number && _number >= 0 &&
        _number == std::floor(_number)) {
        return (std::uint64_t)_number;
    }
    panic("JSON value is not an unsigned integer");
}

double
Json::asDouble() const
{
    if (_type == Type::Unsigned)
        return (double)_uint;
    panic_if(_type != Type::Number, "JSON value is not a number");
    return _number;
}

const std::string &
Json::asString() const
{
    panic_if(_type != Type::String, "JSON value is not a string");
    return _string;
}

const std::vector<Json> &
Json::asArray() const
{
    panic_if(_type != Type::Array, "JSON value is not an array");
    return _array;
}

const std::map<std::string, Json> &
Json::asObject() const
{
    panic_if(_type != Type::Object, "JSON value is not an object");
    return _object;
}

const Json *
Json::find(const std::string &key) const
{
    if (_type != Type::Object)
        return nullptr;
    auto it = _object.find(key);
    return it == _object.end() ? nullptr : &it->second;
}

void
Json::set(const std::string &key, Json value)
{
    panic_if(_type != Type::Object, "set() on a non-object");
    _object[key] = std::move(value);
}

void
Json::push(Json value)
{
    panic_if(_type != Type::Array, "push() on a non-array");
    _array.push_back(std::move(value));
}

std::string
jsonQuote(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::string
Json::dump() const
{
    switch (_type) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return _bool ? "true" : "false";
      case Type::Unsigned:
        return std::to_string(_uint);
      case Type::Number:
        return jsonNumber(_number);
      case Type::String:
        return jsonQuote(_string);
      case Type::Array: {
        std::string out = "[";
        bool first = true;
        for (const auto &v : _array) {
            if (!first)
                out.push_back(',');
            first = false;
            out += v.dump();
        }
        out.push_back(']');
        return out;
      }
      case Type::Object: {
        std::string out = "{";
        bool first = true;
        for (const auto &[key, v] : _object) {
            if (!first)
                out.push_back(',');
            first = false;
            out += jsonQuote(key);
            out.push_back(':');
            out += v.dump();
        }
        out.push_back('}');
        return out;
      }
    }
    return "null";
}

namespace
{

/** Recursive-descent parser over one in-memory document. */
class Parser
{
  public:
    Parser(const std::string &text) : _text(text) {}

    bool
    parseDocument(Json &out, std::string *error)
    {
        if (!parseValue(out, error))
            return false;
        skipSpace();
        if (_pos != _text.size()) {
            fail(error, "trailing characters after JSON value");
            return false;
        }
        return true;
    }

  private:
    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace((unsigned char)_text[_pos])) {
            ++_pos;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (_text.compare(_pos, len, word) != 0)
            return false;
        _pos += len;
        return true;
    }

    void
    fail(std::string *error, const std::string &what)
    {
        if (error) {
            *error = what + " at offset " + std::to_string(_pos);
        }
    }

    bool
    parseString(std::string &out, std::string *error)
    {
        if (_pos >= _text.size() || _text[_pos] != '"') {
            fail(error, "expected string");
            return false;
        }
        ++_pos;
        out.clear();
        while (_pos < _text.size() && _text[_pos] != '"') {
            char c = _text[_pos++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size()) {
                fail(error, "dangling escape");
                return false;
            }
            char esc = _text[_pos++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (_pos + 4 > _text.size()) {
                    fail(error, "short \\u escape");
                    return false;
                }
                unsigned code = 0;
                auto res = std::from_chars(
                    _text.data() + _pos, _text.data() + _pos + 4,
                    code, 16);
                if (res.ptr != _text.data() + _pos + 4) {
                    fail(error, "bad \\u escape");
                    return false;
                }
                _pos += 4;
                // Store low bytes only; the store never writes
                // non-ASCII escapes, so this is round-trip safe.
                out.push_back((char)code);
                break;
              }
              default:
                fail(error, "unknown escape");
                return false;
            }
        }
        if (_pos >= _text.size()) {
            fail(error, "unterminated string");
            return false;
        }
        ++_pos;  // closing quote
        return true;
    }

    bool
    parseNumber(Json &out, std::string *error)
    {
        std::size_t start = _pos;
        bool integral = true;
        if (_pos < _text.size() && _text[_pos] == '-') {
            integral = false;
            ++_pos;
        }
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (std::isdigit((unsigned char)c)) {
                ++_pos;
            } else if (c == '.' || c == 'e' || c == 'E' ||
                       c == '+' || c == '-') {
                integral = false;
                ++_pos;
            } else {
                break;
            }
        }
        if (_pos == start) {
            fail(error, "expected number");
            return false;
        }
        std::string token = _text.substr(start, _pos - start);
        if (integral) {
            std::uint64_t v = 0;
            auto res = std::from_chars(
                token.data(), token.data() + token.size(), v, 10);
            if (res.ec == std::errc() &&
                res.ptr == token.data() + token.size()) {
                out = Json::unsignedInt(v);
                return true;
            }
        }
        char *end = nullptr;
        double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail(error, "malformed number");
            return false;
        }
        out = Json::number(v);
        return true;
    }

    bool
    parseValue(Json &out, std::string *error)
    {
        skipSpace();
        if (_pos >= _text.size()) {
            fail(error, "unexpected end of input");
            return false;
        }
        char c = _text[_pos];
        if (c == '{') {
            ++_pos;
            out = Json::object();
            skipSpace();
            if (_pos < _text.size() && _text[_pos] == '}') {
                ++_pos;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key, error))
                    return false;
                skipSpace();
                if (_pos >= _text.size() || _text[_pos] != ':') {
                    fail(error, "expected ':'");
                    return false;
                }
                ++_pos;
                Json value;
                if (!parseValue(value, error))
                    return false;
                out.set(key, std::move(value));
                skipSpace();
                if (_pos < _text.size() && _text[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_pos < _text.size() && _text[_pos] == '}') {
                    ++_pos;
                    return true;
                }
                fail(error, "expected ',' or '}'");
                return false;
            }
        }
        if (c == '[') {
            ++_pos;
            out = Json::array();
            skipSpace();
            if (_pos < _text.size() && _text[_pos] == ']') {
                ++_pos;
                return true;
            }
            for (;;) {
                Json value;
                if (!parseValue(value, error))
                    return false;
                out.push(std::move(value));
                skipSpace();
                if (_pos < _text.size() && _text[_pos] == ',') {
                    ++_pos;
                    continue;
                }
                if (_pos < _text.size() && _text[_pos] == ']') {
                    ++_pos;
                    return true;
                }
                fail(error, "expected ',' or ']'");
                return false;
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s, error))
                return false;
            out = Json::string(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = Json::boolean(true);
            return true;
        }
        if (literal("false")) {
            out = Json::boolean(false);
            return true;
        }
        if (literal("null")) {
            out = Json::null();
            return true;
        }
        return parseNumber(out, error);
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace

bool
Json::parse(const std::string &text, Json &out, std::string *error)
{
    return Parser(text).parseDocument(out, error);
}

} // namespace scmp::sweep
