#include "scc.hh"

#include <algorithm>

#include "obs/recorder.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace scmp
{

SharedClusterCache::SharedClusterCache(stats::Group *parent,
                                       ClusterId cluster, int numCpus,
                                       const SccParams &params,
                                       Interconnect *bus)
    : _cluster(cluster), _params(params), _bus(bus),
      _tags(params.sizeBytes, params.lineBytes, params.assoc,
            params.sec),
      _bankNextFree((std::size_t)numCpus * params.banksPerCpu, 0),
      statsGroup(parent, "scc"),
      readHits(&statsGroup, "readHits", "read hits"),
      readMisses(&statsGroup, "readMisses", "read misses"),
      writeHits(&statsGroup, "writeHits", "write hits"),
      writeMisses(&statsGroup, "writeMisses", "write misses"),
      upgradeHits(&statsGroup, "upgradeHits",
                  "write hits that issued BusUpgr"),
      mergedMisses(&statsGroup, "mergedMisses",
                   "misses merged into an outstanding MSHR"),
      writeBacks(&statsGroup, "writeBacks",
                 "dirty lines written back on eviction"),
      invalidationsReceived(&statsGroup, "invalidationsReceived",
                            "lines invalidated by remote writes"),
      updatesReceived(&statsGroup, "updatesReceived",
                      "write-update broadcasts absorbed"),
      updatesBroadcast(&statsGroup, "updatesBroadcast",
                       "write-update broadcasts sent"),
      interventionsSupplied(&statsGroup, "interventionsSupplied",
                            "dirty lines supplied to remote reads"),
      bankConflictCycles(&statsGroup, "bankConflictCycles",
                         "cycles lost to bank arbitration"),
      missStallCycles(&statsGroup, "missStallCycles",
                      "cycles processors stalled on misses"),
      rekeyFlushes(&statsGroup, "rekeyFlushes",
                   "rand-isolation rekey flushes performed")
{
    panic_if(numCpus <= 0, "SCC needs at least one processor");
    panic_if(!bus, "SCC needs a bus");
    _filters.resize((std::size_t)numCpus);
    _domainByPort.assign((std::size_t)numCpus, 0);
    if (params.sec.mode != IsolationMode::None) {
        for (int cpu = 0; cpu < numCpus; ++cpu)
            _domainByPort[(std::size_t)cpu] =
                cpu % params.sec.domains;
    }
}

BankId
SharedClusterCache::bankOf(Addr addr) const
{
    // Consecutive lines live in consecutive banks.
    return (BankId)((addr / _params.lineBytes) %
                    _bankNextFree.size());
}

CoherenceState
SharedClusterCache::stateOf(Addr addr) const
{
    const CacheLine *line = _tags.probe(addr);
    return line ? line->state : CoherenceState::Invalid;
}

double
SharedClusterCache::readMissRate() const
{
    double reads = readHits.value() + readMisses.value();
    return reads > 0 ? readMisses.value() / reads : 0.0;
}

double
SharedClusterCache::missRate() const
{
    double hits = readHits.value() + writeHits.value();
    double misses = readMisses.value() + writeMisses.value();
    double total = hits + misses;
    return total > 0 ? misses / total : 0.0;
}

Cycle
SharedClusterCache::access(int localCpu, RefType type, Addr addr,
                           Cycle now)
{
    panic_if(type == RefType::Ifetch,
             "instruction fetches do not reach the SCC");

    Addr lineAddr = _tags.lineAddr(addr);
    FilterSet &filter = _filters[(std::size_t)localCpu];

    // Fast path: one of this port's recent references hit this line
    // and nothing that could divert the outcome — a fill, an
    // eviction, an MSHR allocation (epoch check) or a snoop
    // invalidate/demote (state check) — happened since. Replay the
    // hit path's exact side effects and return.
    for (const RefFilter &f : filter.entry) {
        if (f.lineAddr != lineAddr || f.fillEpoch != _fillEpoch)
            continue;
        CoherenceState state = f.line->state;
        bool hit = type == RefType::Read
                       ? state != CoherenceState::Invalid
                       : state == CoherenceState::Modified;
        if (hit) {
            Cycle &fastBankFree = _bankNextFree[f.bank];
            Cycle start = std::max(now, fastBankFree);
            bankConflictCycles += start - now;
            fastBankFree = start + _params.bankOccupancy;
            _tags.touch(f.line);
            if (type == RefType::Read)
                ++readHits;
            else
                ++writeHits;
            if (_recorder)
                _recorder->sccPortRef(
                    _cluster, localCpu, refTypeName(type), addr,
                    now, start + _params.bankOccupancy, true);
            return start;
        }
        break;  // armed but the state no longer permits the hit
    }

    // Bank arbitration: wait for the serving bank to free up.
    Cycle &bankFree = _bankNextFree[(std::size_t)bankOf(addr)];
    Cycle start = std::max(now, bankFree);
    bankConflictCycles += start - now;
    bankFree = start + _params.bankOccupancy;
    if (_recorder)
        _recorder->sccPortRef(_cluster, localCpu,
                              refTypeName(type), addr, now,
                              bankFree, false);

    // Merge with an outstanding fill for this line, if any.
    if (Cycle *mshr = _mshrs.find(lineAddr)) {
        if (start < *mshr) {
            ++mergedMisses;
            Cycle ready = *mshr;
            if (_recorder)
                _recorder->mshrMerge(_cluster, lineAddr, start);
            missStallCycles += ready - start;
            // A write joining a read fill still needs to inform
            // the other caches (exclusivity or an update).
            CacheLine *line = _tags.probe(lineAddr);
            if (type == RefType::Write && line &&
                line->state == CoherenceState::Shared) {
                if (_params.protocol ==
                    CoherenceProtocol::WriteUpdate) {
                    ++updatesBroadcast;
                    bool remoteCopy = false;
                    _bus->transaction(_cluster, BusOp::Update,
                                      lineAddr, ready,
                                      &remoteCopy);
                    if (!remoteCopy)
                        line->state = CoherenceState::Modified;
                } else {
                    _bus->transaction(_cluster, BusOp::Upgrade,
                                      lineAddr, ready);
                    line->state = CoherenceState::Modified;
                }
            }
            return ready;
        }
        // The fill completed in the past; the entry retires lazily
        // here, at the first reference to find it expired.
        Cycle expired = *mshr;
        _mshrs.erase(lineAddr);
        if (_recorder)
            _recorder->mshrRetire(_cluster, lineAddr, expired);
    }

    CacheLine *line = _tags.lookup(addr);

    if (line) {
        if (_params.fastPath)
            armFilter(filter, line, lineAddr);
        if (type == RefType::Read) {
            ++readHits;
            return start;
        }
        // Write hit.
        if (line->state == CoherenceState::Modified) {
            ++writeHits;
            return start;
        }
        ++writeHits;
        if (_params.protocol == CoherenceProtocol::WriteUpdate) {
            // Broadcast the new data; remote copies stay valid.
            // If nobody else holds the line, promote to Modified
            // (the Firefly last-copy optimization) so future
            // writes stay off the bus.
            ++updatesBroadcast;
            bool remoteCopy = false;
            Cycle grant = _bus->transaction(
                _cluster, BusOp::Update, lineAddr, start,
                &remoteCopy);
            if (!remoteCopy)
                line->state = CoherenceState::Modified;
            if (_params.stallOnUpgrade) {
                missStallCycles += grant - start;
                return grant;
            }
            return start;
        }
        // Shared → Modified: invalidate remote copies.
        ++upgradeHits;
        Cycle grant = _bus->transaction(_cluster, BusOp::Upgrade,
                                        lineAddr, start);
        line->state = CoherenceState::Modified;
        if (_params.stallOnUpgrade) {
            missStallCycles += grant - start;
            return grant;
        }
        return start;
    }

    // Miss.
    if (type == RefType::Read)
        ++readMisses;
    else
        ++writeMisses;
    DPRINTF(Cache, "scc", _cluster, " ", refTypeName(type),
            " miss line 0x", std::hex, lineAddr, std::dec, " @",
            start);
    Cycle ready = handleMiss(type, lineAddr, start,
                             _domainByPort[(std::size_t)localCpu]);
    missStallCycles += ready - start;
    return ready;
}

void
SharedClusterCache::rekeyFlush(Cycle now)
{
    // Empty the array: every resident line leaves through the same
    // writeback/evict sequence a capacity eviction uses, so the
    // observer's shadow state tracks the flush exactly.
    _tags.forEachLine([&](CacheLine &line) {
        if (!line.valid())
            return;
        if (_mshrs.erase(line.tag) && _recorder)
            _recorder->mshrRetire(_cluster, line.tag, now);
        bool dirty = line.state == CoherenceState::Modified;
        if (dirty) {
            ++writeBacks;
            _bus->transaction(_cluster, BusOp::WriteBack, line.tag,
                              now);
        }
        if (_observer) {
            if (dirty)
                _observer->onDirtyFlush(_cluster, line.tag);
            _observer->onEvict(_cluster, line.tag, dirty);
        }
        line.state = CoherenceState::Invalid;
        line.tag = invalidAddr;
        line.lruStamp = 0;
        line.domain = 0;
    });
    for (FilterSet &set : _filters)
        set = FilterSet{};
    ++_fillEpoch;
    _tags.rekey();
    _fillsSinceRekey = 0;
    ++rekeyFlushes;
    DPRINTF(Cache, "scc", _cluster, " rekeyed to epoch ",
            _tags.rekeyEpoch(), " @", now);
}

Cycle
SharedClusterCache::handleMiss(RefType type, Addr lineAddr,
                               Cycle now, int domain)
{
    // Rand isolation turns its epoch by fill count: once enough
    // fills have landed under the current keys, flush and rekey
    // before this miss allocates.
    if (_params.sec.mode == IsolationMode::Rand &&
        _params.sec.rekeyFills != 0 &&
        _fillsSinceRekey >= _params.sec.rekeyFills)
        rekeyFlush(now);
    ++_fillsSinceRekey;

    // Every fill moves a tag and allocates an MSHR; advancing the
    // epoch here is what lets the reference filters prove, with one
    // compare, that neither has happened since they were armed.
    ++_fillEpoch;

    // Evict the victim; write back dirty data (buffered, so the
    // requester does not wait on it beyond bus occupancy).
    CacheLine *victim = _tags.victim(lineAddr, domain);
    if (victim->valid()) {
        if (_mshrs.erase(victim->tag) && _recorder)
            _recorder->mshrRetire(_cluster, victim->tag, now);
        if (victim->state == CoherenceState::Modified) {
            ++writeBacks;
            _bus->transaction(_cluster, BusOp::WriteBack, victim->tag,
                              now);
        }
    }

    bool update =
        _params.protocol == CoherenceProtocol::WriteUpdate;
    // Under write-update a write miss fetches a shared copy and
    // broadcasts the new data; remote copies survive.
    BusOp op = (type == RefType::Write && !update)
                   ? BusOp::ReadExcl
                   : BusOp::Read;
    bool remoteCopy = false;
    Cycle ready =
        _bus->transaction(_cluster, op, lineAddr, now, &remoteCopy);

    CoherenceState fillState;
    if (type == RefType::Write && !update) {
        fillState = CoherenceState::Modified;
    } else if (update && !remoteCopy) {
        fillState = CoherenceState::Modified;  // exclusive fill
    } else {
        fillState = CoherenceState::Shared;
    }
    if (type == RefType::Write && update && remoteCopy) {
        ++updatesBroadcast;
        _bus->transaction(_cluster, BusOp::Update, lineAddr,
                          ready);
    }
    // The victim leaves the tag array only here, when the fill
    // overwrites it — report the eviction at the same point so an
    // observer's shadow state never disagrees with the tags while
    // the miss's bus transactions are in flight.
    if (_observer && victim->valid()) {
        bool dirty = victim->state == CoherenceState::Modified;
        if (dirty)
            _observer->onDirtyFlush(_cluster, victim->tag);
        _observer->onEvict(_cluster, victim->tag, dirty);
    }
    _tags.fill(victim, lineAddr, fillState, domain);
    if (_observer)
        _observer->onFill(_cluster, lineAddr, fillState);
    _mshrs.set(lineAddr, ready);
    if (_recorder)
        _recorder->mshrAlloc(_cluster, lineAddr, now, ready);
    return ready;
}

SnoopResult
SharedClusterCache::snoop(BusOp op, Addr lineAddr, Cycle when)
{
    SnoopResult result;
    CacheLine *line = _tags.probe(lineAddr);
    if (!line)
        return result;

    result.hadCopy = true;
    switch (op) {
      case BusOp::Read:
        if (line->state == CoherenceState::Modified) {
            // Supply the dirty line and keep a shared copy.
            result.suppliedDirty = true;
            ++interventionsSupplied;
            line->state = CoherenceState::Shared;
            if (_observer)
                _observer->onDirtyFlush(_cluster, lineAddr);
        }
        break;
      case BusOp::ReadExcl:
      case BusOp::Upgrade:
#ifdef SCMP_PROTOCOL_MUTATION
        // Test-only injected protocol bug (check_mutation_death):
        // an Upgrade leaves remote Shared copies valid — the
        // classic lost invalidation. The checker must catch it.
        if (op == BusOp::Upgrade)
            break;
#endif
        if (line->state == CoherenceState::Modified) {
            result.suppliedDirty = true;
            ++interventionsSupplied;
            if (_observer)
                _observer->onDirtyFlush(_cluster, lineAddr);
        }
        _tags.invalidate(lineAddr);
        if (_mshrs.erase(lineAddr) && _recorder)
            _recorder->mshrRetire(_cluster, lineAddr, when);
        flushFilters(lineAddr);
        if (_observer)
            _observer->onInvalidate(_cluster, lineAddr);
        result.invalidated = true;
        ++invalidationsReceived;
        DPRINTF(Coherence, "scc", _cluster,
                " invalidated line 0x", std::hex, lineAddr,
                std::dec, " by ", busOpName(op));
        break;
      case BusOp::Update:
        // Absorb the broadcast; the copy stays valid. A Modified
        // copy cannot coexist with the writer's, but demote
        // defensively if the protocols were mixed.
        if (line->state == CoherenceState::Modified)
            line->state = CoherenceState::Shared;
        // The copy survives, but a filtered write may no longer
        // treat it as exclusively held — drop the armed filters
        // and let the next reference re-prove the hit.
        flushFilters(lineAddr);
        if (_observer)
            _observer->onUpdateAbsorbed(_cluster, lineAddr);
        ++updatesReceived;
        break;
      case BusOp::WriteBack:
        // Memory absorbs writebacks; nothing for peers to do.
        break;
    }
    return result;
}

} // namespace scmp
