#include "store_buffer.hh"

#include "mem/scc.hh"
#include "sim/logging.hh"

namespace scmp
{

const char *
consistencyName(ConsistencyModel model)
{
    switch (model) {
      case ConsistencyModel::Sc:
        return "sc";
      case ConsistencyModel::Weak:
        return "weak";
    }
    return "?";
}

bool
parseConsistency(const std::string &text, ConsistencyModel *out)
{
    if (text == "sc") {
        *out = ConsistencyModel::Sc;
        return true;
    }
    if (text == "weak") {
        *out = ConsistencyModel::Weak;
        return true;
    }
    return false;
}

StoreBufferStats::StoreBufferStats(stats::Group *parent)
    : group(parent, "storebuf"),
      storesBuffered(&group, "storesBuffered",
                     "stores retired into a store buffer"),
      storesDrained(&group, "storesDrained",
                    "buffered stores drained onto a cache"),
      loadsForwarded(&group, "loadsForwarded",
                     "loads served by store-buffer read bypass"),
      fences(&group, "fences", "full fences executed"),
      drainStallCycles(&group, "drainStallCycles",
                       "cycles stalled on a full store buffer"),
      fenceWaitCycles(&group, "fenceWaitCycles",
                      "cycles spent waiting for fence drains")
{
}

StoreBuffer::StoreBuffer(SharedClusterCache *cache, int localCpu,
                         int cacheIdx, CpuId cpu, int capacity,
                         StoreBufferStats *stats)
    : _cache(cache), _localCpu(localCpu), _cacheIdx(cacheIdx),
      _cpu(cpu), _capacity(capacity), _stats(stats)
{
    panic_if(!cache, "store buffer needs a cache to drain into");
    panic_if(capacity <= 0,
             "store buffer capacity must be positive");
    panic_if(!stats, "store buffer needs the shared stats block");
}

Cycle
StoreBuffer::drainHead(Cycle floor)
{
    Entry entry = _fifo.front();
    _fifo.pop_front();
    Cycle start = std::max(entry.ready, floor);
    if (_observer)
        _observer->onStoreDrainStart(_cpu, _cacheIdx, entry.addr,
                                     entry.seq);
    Cycle done = _cache->access(_localCpu, RefType::Write,
                                entry.addr, start);
    if (_observer)
        _observer->onStoreDrainEnd(_cpu, _cacheIdx, entry.addr);
    _drainFree = std::max(_drainFree, done);
    ++_stats->storesDrained;
    return start;
}

void
StoreBuffer::drainDue(Cycle now)
{
    // Lazy background drain: one transaction in flight at a time
    // (`_drainFree` serializes the issue slots), preserving the
    // processor's own store order on the interconnect while keeping
    // drains off the busy periods the processor itself creates.
    while (!_fifo.empty() &&
           std::max(_fifo.front().ready, _drainFree) <= now) {
        drainHead(_drainFree);
    }
}

Cycle
StoreBuffer::store(Addr addr, Cycle now)
{
    drainDue(now);
    // Under pressure the buffer streams: a full FIFO stalls the
    // processor only until the head transaction is handed to the
    // interconnect — an issued-but-in-flight store occupies the
    // fabric's queues, not a buffer slot. The fabrics serialize the
    // overlapping requests through their own arbitration.
    Cycle retire = now;
    while ((int)_fifo.size() >= _capacity)
        retire = std::max(retire, drainHead(retire) + 1);
    if (retire > now)
        _stats->drainStallCycles += retire - now;
    std::uint64_t seq =
        _observer ? _observer->onStoreBuffered(_cpu, _cacheIdx, addr)
                  : 0;
    _fifo.push_back({addr, retire, seq});
    ++_stats->storesBuffered;
    return retire;
}

bool
StoreBuffer::forward(Addr addr, Cycle now)
{
    if (_fifo.empty())
        return false;
    // Word granularity matches the oracle's: a load forwards only
    // from a pending store to the SAME 8-byte word; partial overlap
    // within a line still goes to the cache.
    const Addr word = addr & ~(Addr)7;
    for (auto it = _fifo.rbegin(); it != _fifo.rend(); ++it) {
        if ((it->addr & ~(Addr)7) != word)
            continue;
        if (_observer)
            _observer->onLoadForwarded(_cpu, addr);
        ++_stats->loadsForwarded;
        (void)now;
        return true;
    }
    return false;
}

Cycle
StoreBuffer::fence(Cycle now)
{
#ifndef SCMP_CONSISTENCY_MUTATION
    // Flush everything, in order but streamed: unlike the lazy
    // background drain, a fence pushes the whole buffer onto the
    // interconnect back-to-back and completes when the last
    // transaction does. A flush of K stores costs roughly one
    // latency plus K transfer occupancies instead of K full
    // latencies. Commit order is still the issue order, so the
    // oracle's FIFO rule holds.
    while (!_fifo.empty())
        drainHead(now);
#else
    // Deliberately broken fence for the oracle teeth test
    // (tests/consistency_mutation_death.cpp): retire the fence
    // without draining. The checker's onFence must kill the run.
#endif
    if (_observer)
        _observer->onFence(_cpu);
    ++_stats->fences;
    Cycle done = std::max(now, _drainFree);
    _stats->fenceWaitCycles += done - now;
    return done;
}

} // namespace scmp
