/**
 * @file
 * A small open-addressing hash table for in-flight misses.
 *
 * The SCC tracks outstanding fills as line-address → data-ready
 * cycle. The population is tiny (bounded by the misses in flight
 * plus a few lazily-expired stragglers) but the lookup sits on the
 * per-reference hot path, where std::unordered_map pays a heap node
 * per entry and a pointer chase per probe. This table keeps the
 * entries in one flat power-of-two array with linear probing and
 * backward-shift deletion: no tombstones, no allocation after
 * construction (until a rare growth), and the common miss — "no
 * entry for this line" — is one hash, one load, one compare.
 *
 * Not a general map: keys must never equal invalidAddr (line
 * addresses never do) and the value type is Cycle.
 */

#ifndef SCMP_MEM_MSHR_TABLE_HH
#define SCMP_MEM_MSHR_TABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace scmp
{

/** Flat line-address → ready-cycle map for outstanding fills. */
class MshrTable
{
  public:
    explicit MshrTable(std::size_t initialSlots = 32)
    {
        std::size_t slots = 4;
        while (slots < initialSlots)
            slots *= 2;
        _slots.assign(slots, Slot{});
        _mask = slots - 1;
    }

    /** Outstanding entries. */
    std::size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    /**
     * Find the ready cycle for @p lineAddr.
     * @return pointer to the stored cycle (mutable, stable until
     *         the next insert/erase), or nullptr when absent.
     */
    Cycle *
    find(Addr lineAddr)
    {
        std::size_t i = home(lineAddr);
        while (_slots[i].key != invalidAddr) {
            if (_slots[i].key == lineAddr)
                return &_slots[i].ready;
            i = (i + 1) & _mask;
        }
        return nullptr;
    }

    /** Insert @p lineAddr → @p ready, overwriting any entry. */
    void
    set(Addr lineAddr, Cycle ready)
    {
        panic_if(lineAddr == invalidAddr,
                 "MSHR table key must be a real line address");
        if ((_size + 1) * 4 > _slots.size() * 3)
            grow();
        std::size_t i = home(lineAddr);
        while (_slots[i].key != invalidAddr) {
            if (_slots[i].key == lineAddr) {
                _slots[i].ready = ready;
                return;
            }
            i = (i + 1) & _mask;
        }
        _slots[i] = Slot{lineAddr, ready};
        ++_size;
    }

    /**
     * Remove @p lineAddr's entry if present.
     * @return true when an entry was removed.
     */
    bool
    erase(Addr lineAddr)
    {
        std::size_t i = home(lineAddr);
        while (_slots[i].key != lineAddr) {
            if (_slots[i].key == invalidAddr)
                return false;
            i = (i + 1) & _mask;
        }
        // Backward-shift deletion: pull every displaced follower of
        // the probe chain into the vacated slot so lookups never
        // need tombstones.
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & _mask;
            if (_slots[j].key == invalidAddr)
                break;
            std::size_t h = home(_slots[j].key);
            // Move j into the hole only if the hole lies on j's
            // probe path, i.e. distance(h → hole) <= distance(h → j).
            if (((j - h) & _mask) >= ((j - hole) & _mask)) {
                _slots[hole] = _slots[j];
                hole = j;
            }
        }
        _slots[hole] = Slot{};
        --_size;
        return true;
    }

    void
    clear()
    {
        _slots.assign(_slots.size(), Slot{});
        _size = 0;
    }

  private:
    struct Slot
    {
        Addr key = invalidAddr;  //!< invalidAddr marks an empty slot
        Cycle ready = 0;
    };

    std::size_t
    home(Addr key) const
    {
        // Fibonacci-style multiplicative mix; line addresses share
        // low zero bits, so fold the high bits back down.
        std::uint64_t h = (std::uint64_t)key * 0x9e3779b97f4a7c15ull;
        return (std::size_t)(h >> 32) & _mask;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(old.size() * 2, Slot{});
        _mask = _slots.size() - 1;
        _size = 0;
        for (const Slot &slot : old) {
            if (slot.key != invalidAddr)
                set(slot.key, slot.ready);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _mask = 0;
    std::size_t _size = 0;
};

} // namespace scmp

#endif // SCMP_MEM_MSHR_TABLE_HH
