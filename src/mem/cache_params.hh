/**
 * @file
 * Parameter bundles for the cluster memory system.
 *
 * Defaults reproduce the paper's simulation model: 16-byte lines,
 * direct-mapped SCCs with four banks per processor, a fixed
 * 100-cycle line-fetch latency over the snoopy bus, and per-cluster
 * 16 KB instruction caches.
 */

#ifndef SCMP_MEM_CACHE_PARAMS_HH
#define SCMP_MEM_CACHE_PARAMS_HH

#include <cstdint>

#include "net/net_params.hh"
#include "sec/sec_params.hh"
#include "sim/types.hh"

namespace scmp
{

/**
 * Inter-cluster coherence protocol.
 *
 * WriteInvalidate is the paper's scheme (a write kills remote
 * copies; re-readers miss). WriteUpdate is the era's alternative
 * (Firefly/Dragon flavour): writes to shared lines broadcast the
 * new data, remote copies stay valid, and the writer's line stays
 * Shared — trading invalidation misses for bus update traffic.
 */
enum class CoherenceProtocol : std::uint8_t
{
    WriteInvalidate,
    WriteUpdate,
};

/** Shared Cluster Cache geometry and timing. */
struct SccParams
{
    /** Total data capacity in bytes (paper sweeps 4 KB .. 512 KB). */
    std::uint64_t sizeBytes = 64 * 1024;

    /** Line size; 16 B in the paper to curb false sharing. */
    std::uint32_t lineBytes = 16;

    /** Associativity; the paper's caches are direct-mapped. */
    std::uint32_t assoc = 1;

    /** Banks per processor in the cluster (paper: four). */
    std::uint32_t banksPerCpu = 4;

    /** Cycles a bank is busy per access. */
    Cycle bankOccupancy = 1;

    /** Whether a write hit on a Shared line stalls the writer. */
    bool stallOnUpgrade = false;

    /** Inter-cluster coherence protocol. */
    CoherenceProtocol protocol =
        CoherenceProtocol::WriteInvalidate;

    /**
     * Security-isolation placement policy (src/sec). The default
     * (IsolationMode::None) is the paper's fully contended shared
     * cache, bit-identical to the pre-axis machine; the axis is
     * hashed into sweep point keys only when a mitigation is on.
     */
    SecParams sec;

    /**
     * Enable the same-line reference filter (the hot-path fast
     * path). Provably bit-identical timing and statistics; the
     * switch exists so tests can prove that equivalence by running
     * both ways. Like checkCoherence, it is NOT part of the design
     * point's identity and is never hashed into sweep keys.
     */
    bool fastPath = true;
};

// BusParams (the paper's fixed bus timing) moved to
// net/net_params.hh with the rest of the interconnect vocabulary;
// re-exported through the include above.

/** Per-processor instruction cache. */
struct ICacheParams
{
    /** Whether instruction fetch is simulated at all. */
    bool enabled = false;

    /** Capacity (paper: 16 KB per processor). */
    std::uint64_t sizeBytes = 16 * 1024;

    /** Line size for instruction fetches. */
    std::uint32_t lineBytes = 32;

    /** Bytes per instruction for the synthetic PC walk. */
    std::uint32_t bytesPerInstr = 4;
};

/** Stable MSI coherence states for SCC lines. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Modified,
};

/** Human-readable state name (debug/trace output). */
const char *coherenceStateName(CoherenceState state);

} // namespace scmp

#endif // SCMP_MEM_CACHE_PARAMS_HH
