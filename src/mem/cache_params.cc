#include "cache_params.hh"

namespace scmp
{

const char *
coherenceStateName(CoherenceState state)
{
    switch (state) {
      case CoherenceState::Invalid: return "I";
      case CoherenceState::Shared: return "S";
      case CoherenceState::Modified: return "M";
    }
    return "?";
}

const char *
busOpName(BusOp op)
{
    switch (op) {
      case BusOp::Read: return "Read";
      case BusOp::ReadExcl: return "ReadExcl";
      case BusOp::Upgrade: return "Upgrade";
      case BusOp::Update: return "Update";
      case BusOp::WriteBack: return "WriteBack";
    }
    return "?";
}

} // namespace scmp
