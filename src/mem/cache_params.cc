#include "cache_params.hh"

namespace scmp
{

const char *
coherenceStateName(CoherenceState state)
{
    switch (state) {
      case CoherenceState::Invalid: return "I";
      case CoherenceState::Shared: return "S";
      case CoherenceState::Modified: return "M";
    }
    return "?";
}

} // namespace scmp
