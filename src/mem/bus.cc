#include "bus.hh"

#include <algorithm>

#include "mem/coherence_observer.hh"
#include "obs/recorder.hh"
#include "sim/debug.hh"
#include "sim/logging.hh"

namespace scmp
{

SnoopyBus::SnoopyBus(stats::Group *parent, const BusParams &params)
    : _params(params),
      statsGroup(parent, "bus"),
      transactions(&statsGroup, "transactions",
                   "total bus transactions"),
      reads(&statsGroup, "reads", "BusRd transactions"),
      readExcls(&statsGroup, "readExcls", "BusRdX transactions"),
      upgrades(&statsGroup, "upgrades", "BusUpgr transactions"),
      updates(&statsGroup, "updates",
              "write-update broadcast transactions"),
      writeBacks(&statsGroup, "writeBacks", "writeback transactions"),
      invalidations(&statsGroup, "invalidations",
                    "line invalidations performed in remote SCCs"),
      interventions(&statsGroup, "interventions",
                    "dirty lines supplied by a remote SCC"),
      waitCycles(&statsGroup, "waitCycles",
                 "cycles requests waited for bus arbitration")
{
}

void
SnoopyBus::attach(Snooper *snooper)
{
    _snoopers.push_back(snooper);
}

Cycle
SnoopyBus::transaction(ClusterId source, BusOp op, Addr lineAddr,
                       Cycle now, bool *remoteCopyOut)
{
    ++transactions;
    switch (op) {
      case BusOp::Read: ++reads; break;
      case BusOp::ReadExcl: ++readExcls; break;
      case BusOp::Upgrade: ++upgrades; break;
      case BusOp::Update: ++updates; break;
      case BusOp::WriteBack: ++writeBacks; break;
    }

    Cycle grant = std::max(now, _nextFree);
    waitCycles += grant - now;
    DPRINTF(Bus, busOpName(op), " from ", source, " line 0x",
            std::hex, lineAddr, std::dec, " granted @", grant);

    // Upgrades carry no data; updates carry one word, which we
    // charge at the address-phase cost as split-transaction buses
    // of the era did for single-word updates.
    Cycle occupancy =
        (op == BusOp::Upgrade || op == BusOp::Update)
            ? _params.addressOccupancy
            : _params.transferOccupancy;

    // Broadcast to every other client at the grant cycle.
    bool dirtySupplied = false;
    bool remoteCopy = false;
    int snooped = 0;
    for (Snooper *snooper : _snoopers) {
        if (snooper->snooperId() == source)
            continue;
        ++snooped;
        SnoopResult result = snooper->snoop(op, lineAddr, grant);
        if (result.invalidated)
            ++invalidations;
        if (result.suppliedDirty)
            dirtySupplied = true;
        if (result.hadCopy)
            remoteCopy = true;
    }
    if (remoteCopyOut)
        *remoteCopyOut = remoteCopy;
    if (_observer)
        _observer->onBusTransaction(source, op, lineAddr, grant);
    if (dirtySupplied) {
        ++interventions;
        // The intervening SCC's flush adds a transfer slot.
        occupancy += _params.transferOccupancy;
    }

    _nextFree = grant + occupancy;
    _busyCycles += occupancy;

    if (_recorder)
        _recorder->busTransaction((int)source, busOpName(op),
                                  lineAddr, now, grant, occupancy,
                                  snooped, dirtySupplied);

    switch (op) {
      case BusOp::Read:
      case BusOp::ReadExcl:
        // Fixed line-fetch latency from grant, per the paper.
        return grant + _params.memoryLatency;
      case BusOp::Upgrade:
      case BusOp::Update:
      case BusOp::WriteBack:
        return grant;
    }
    panic("unreachable bus op");
}

double
SnoopyBus::utilization(Cycle now) const
{
    return now ? (double)_busyCycles / (double)now : 0.0;
}

} // namespace scmp
