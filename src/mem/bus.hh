/**
 * @file
 * Compatibility header: the snoopy bus now lives in src/net.
 *
 * The paper's atomic bus was extracted behind the Interconnect
 * interface (net/interconnect.hh) as AtomicBus, alongside the
 * split-transaction and hierarchical fabrics. This header keeps
 * the historical include path and the SnoopyBus name working for
 * the directed tests and micro benches.
 */

#ifndef SCMP_MEM_BUS_HH
#define SCMP_MEM_BUS_HH

#include "mem/cache_params.hh"
#include "net/atomic_bus.hh"
#include "net/interconnect.hh"

#endif // SCMP_MEM_BUS_HH
