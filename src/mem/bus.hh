/**
 * @file
 * The shared snoopy bus connecting the SCCs and main memory.
 *
 * A single arbiter serializes transactions; every transaction
 * broadcasts to all other attached snoopers (the SCCs), which
 * invalidate or supply data per the MSI write-invalidate protocol.
 * Line fetches complete a fixed memoryLatency after winning the
 * bus, whether memory or a remote SCC supplies the line — the
 * paper's assumption.
 */

#ifndef SCMP_MEM_BUS_HH
#define SCMP_MEM_BUS_HH

#include <vector>

#include "mem/cache_params.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace scmp
{

class CoherenceObserver;

namespace obs
{
class Recorder;
}

/** Result of broadcasting a transaction to one snooper. */
struct SnoopResult
{
    bool hadCopy = false;        //!< snooper held the line
    bool suppliedDirty = false;  //!< snooper held it Modified
    bool invalidated = false;    //!< snooper dropped its copy
};

/** Interface every bus client implements to observe transactions. */
class Snooper
{
  public:
    virtual ~Snooper() = default;

    /**
     * React to another client's transaction.
     * @param op       The transaction kind.
     * @param lineAddr Line-aligned address.
     * @param when     Bus-grant cycle of the transaction.
     */
    virtual SnoopResult snoop(BusOp op, Addr lineAddr,
                              Cycle when) = 0;

    /** Identifier used to skip self-snooping. */
    virtual ClusterId snooperId() const = 0;
};

/** The inter-cluster snoopy bus plus main memory timing. */
class SnoopyBus
{
  public:
    SnoopyBus(stats::Group *parent, const BusParams &params);

    /** Register a snooping client (an SCC). */
    void attach(Snooper *snooper);

    /**
     * Attach a correctness observer (src/check). Notified after
     * every transaction's snoop broadcast; null detaches.
     */
    void setObserver(CoherenceObserver *observer)
    {
        _observer = observer;
    }

    /**
     * Attach an observability recorder (src/obs). One branch per
     * transaction when attached, nothing when null.
     */
    void setRecorder(obs::Recorder *recorder)
    {
        _recorder = recorder;
    }

    /**
     * Execute one transaction.
     *
     * @param source Requesting cluster (skipped during snooping).
     * @param op     Transaction kind.
     * @param lineAddr Line-aligned address.
     * @param now    Request cycle.
     * @param remoteCopyOut Optional: set to true when any other
     *         snooper held the line (drives exclusive-fill and
     *         last-copy decisions in the update protocol).
     * @return cycle at which the requester's miss data is ready;
     *         address-only ops (Upgrade/Update) return the grant
     *         cycle and WriteBack returns the grant cycle
     *         (write-buffered).
     */
    Cycle transaction(ClusterId source, BusOp op, Addr lineAddr,
                      Cycle now, bool *remoteCopyOut = nullptr);

    /** Count of invalidations actually performed system-wide. */
    std::uint64_t invalidationsPerformed() const
    {
        return (std::uint64_t)invalidations.value();
    }

    const BusParams &params() const { return _params; }

    /** Fraction of cycles the bus was occupied up to @p now. */
    double utilization(Cycle now) const;

  private:
    BusParams _params;
    std::vector<Snooper *> _snoopers;
    CoherenceObserver *_observer = nullptr;
    obs::Recorder *_recorder = nullptr;
    Cycle _nextFree = 0;
    Cycle _busyCycles = 0;

    stats::Group statsGroup;

  public:
    /// @name Statistics
    /// @{
    stats::Scalar transactions;
    stats::Scalar reads;
    stats::Scalar readExcls;
    stats::Scalar upgrades;
    stats::Scalar updates;
    stats::Scalar writeBacks;
    stats::Scalar invalidations;
    stats::Scalar interventions;  //!< dirty lines supplied by SCCs
    stats::Scalar waitCycles;     //!< cycles spent arbitrating
    /// @}
};

} // namespace scmp

#endif // SCMP_MEM_BUS_HH
