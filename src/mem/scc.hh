/**
 * @file
 * The Shared Cluster Cache (SCC) — the paper's central structure.
 *
 * A banked, multi-ported, non-blocking write-back data cache shared
 * by every processor in a cluster. Banks are interleaved on cache
 * lines; each processor has a dedicated port, so contention arises
 * only when two processors touch the same bank in the same cycle.
 * Outstanding misses are tracked in an MSHR file, so a second
 * processor referencing an in-flight line merges with the existing
 * miss instead of issuing a new bus transaction — the mechanism
 * behind the paper's inter-processor prefetching effect.
 */

#ifndef SCMP_MEM_SCC_HH
#define SCMP_MEM_SCC_HH

#include <unordered_map>
#include <vector>

#include "mem/bus.hh"
#include "mem/cache_params.hh"
#include "mem/coherence_observer.hh"
#include "mem/tag_array.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace scmp
{

/** One cluster's shared data cache. */
class SharedClusterCache : public Snooper
{
  public:
    /**
     * @param parent   Statistics parent group.
     * @param cluster  This cluster's id (bus snoop identity).
     * @param numCpus  Processors sharing this cache.
     * @param params   Geometry/timing.
     * @param bus      The inter-cluster snoopy bus.
     */
    SharedClusterCache(stats::Group *parent, ClusterId cluster,
                       int numCpus, const SccParams &params,
                       SnoopyBus *bus);

    /**
     * Perform a data reference from a processor in this cluster.
     *
     * @param localCpu Processor index within the cluster.
     * @param type     Read or Write.
     * @param addr     Simulated byte address.
     * @param now      Issue cycle.
     * @return cycle at which the processor may continue.
     */
    Cycle access(int localCpu, RefType type, Addr addr, Cycle now);

    /// @name Snooper interface (called by the bus).
    /// @{
    SnoopResult snoop(BusOp op, Addr lineAddr, Cycle when) override;
    ClusterId snooperId() const override { return _cluster; }
    /// @}

    /**
     * Attach a correctness observer (src/check). The cache reports
     * its tag/state transitions to it; null detaches.
     */
    void setObserver(CoherenceObserver *observer)
    {
        _observer = observer;
    }

    /** Coherence state of the line containing @p addr (tests). */
    CoherenceState stateOf(Addr addr) const;

    /** Bank index serving @p addr (tests: line interleaving). */
    BankId bankOf(Addr addr) const;

    int numBanks() const { return (int)_bankNextFree.size(); }
    const SccParams &params() const { return _params; }
    const TagArray &tags() const { return _tags; }

    /** Read miss rate so far (read misses / reads). */
    double readMissRate() const;

    /** Overall miss rate (all misses / all accesses). */
    double missRate() const;

  private:
    /** Handle a miss; returns data-ready cycle. */
    Cycle handleMiss(RefType type, Addr lineAddr, Cycle now);

    ClusterId _cluster;
    SccParams _params;
    SnoopyBus *_bus;
    CoherenceObserver *_observer = nullptr;
    TagArray _tags;
    std::vector<Cycle> _bankNextFree;

    /** In-flight fills: line address → completion cycle. */
    std::unordered_map<Addr, Cycle> _mshrs;

    stats::Group statsGroup;

  public:
    /// @name Statistics
    /// @{
    stats::Scalar readHits;
    stats::Scalar readMisses;
    stats::Scalar writeHits;
    stats::Scalar writeMisses;
    stats::Scalar upgradeHits;    //!< write hits needing BusUpgr
    stats::Scalar mergedMisses;   //!< misses merged into an MSHR
    stats::Scalar writeBacks;
    stats::Scalar invalidationsReceived;
    stats::Scalar updatesReceived;
    stats::Scalar updatesBroadcast;
    stats::Scalar interventionsSupplied;
    stats::Scalar bankConflictCycles;
    stats::Scalar missStallCycles;
    /// @}
};

} // namespace scmp

#endif // SCMP_MEM_SCC_HH
