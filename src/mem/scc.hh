/**
 * @file
 * The Shared Cluster Cache (SCC) — the paper's central structure.
 *
 * A banked, multi-ported, non-blocking write-back data cache shared
 * by every processor in a cluster. Banks are interleaved on cache
 * lines; each processor has a dedicated port, so contention arises
 * only when two processors touch the same bank in the same cycle.
 * Outstanding misses are tracked in an MSHR file, so a second
 * processor referencing an in-flight line merges with the existing
 * miss instead of issuing a new bus transaction — the mechanism
 * behind the paper's inter-processor prefetching effect.
 */

#ifndef SCMP_MEM_SCC_HH
#define SCMP_MEM_SCC_HH

#include <vector>

#include "mem/bus.hh"
#include "mem/cache_params.hh"
#include "mem/coherence_observer.hh"
#include "mem/mshr_table.hh"
#include "mem/tag_array.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace scmp
{

/** One cluster's shared data cache. */
class SharedClusterCache : public Snooper
{
  public:
    /**
     * @param parent   Statistics parent group.
     * @param cluster  This cluster's id (bus snoop identity).
     * @param numCpus  Processors sharing this cache.
     * @param params   Geometry/timing.
     * @param bus      The inter-cluster interconnect.
     */
    SharedClusterCache(stats::Group *parent, ClusterId cluster,
                       int numCpus, const SccParams &params,
                       Interconnect *bus);

    /**
     * Perform a data reference from a processor in this cluster.
     *
     * @param localCpu Processor index within the cluster.
     * @param type     Read or Write.
     * @param addr     Simulated byte address.
     * @param now      Issue cycle.
     * @return cycle at which the processor may continue.
     */
    Cycle access(int localCpu, RefType type, Addr addr, Cycle now);

    /// @name Snooper interface (called by the bus).
    /// @{
    SnoopResult snoop(BusOp op, Addr lineAddr, Cycle when) override;
    ClusterId snooperId() const override { return _cluster; }
    /// @}

    /**
     * Attach a correctness observer (src/check). The cache reports
     * its tag/state transitions to it; null detaches.
     */
    void setObserver(CoherenceObserver *observer)
    {
        _observer = observer;
    }

    /**
     * Attach an observability recorder (src/obs). Port references
     * and MSHR lifecycle events are reported when attached; the
     * reference fast path pays exactly one branch when not.
     */
    void setRecorder(obs::Recorder *recorder)
    {
        _recorder = recorder;
    }

    /** Coherence state of the line containing @p addr (tests). */
    CoherenceState stateOf(Addr addr) const;

    /** Bank index serving @p addr (tests: line interleaving). */
    BankId bankOf(Addr addr) const;

    int numBanks() const { return (int)_bankNextFree.size(); }
    const SccParams &params() const { return _params; }
    const TagArray &tags() const { return _tags; }

    /** Read miss rate so far (read misses / reads). */
    double readMissRate() const;

    /** Overall miss rate (all misses / all accesses). */
    double missRate() const;

  private:
    /** Handle a miss by @p domain; returns data-ready cycle. */
    Cycle handleMiss(RefType type, Addr lineAddr, Cycle now,
                     int domain);

    /**
     * Rand-isolation epoch turn: write back and drop every resident
     * line, clear the filters and MSHRs, and re-derive the tag
     * array's per-domain index keys. Deterministic — triggered by
     * fill counts, never by wall time.
     */
    void rekeyFlush(Cycle now);

    /**
     * One processor port's last-hit filter — the reference fast
     * path. Armed on a plain hit; a repeat reference to the same
     * line replays exactly the hit path's side effects (bank
     * arbitration, LRU touch, one stat increment) without the MSHR
     * probe or the tag walk.
     *
     * Validity is re-proven on every use rather than trusted:
     *   - fillEpoch must equal _fillEpoch. handleMiss() is the only
     *     place an MSHR entry is created or a tag moves (fill or
     *     eviction), and it bumps the epoch — so an epoch match
     *     means no MSHR entry can exist for the armed line and the
     *     armed CacheLine pointer still holds that line.
     *   - the live coherence state must still permit the hit: any
     *     valid state for a read, Modified for a write. Remote
     *     snoops that invalidate or demote the line are caught
     *     here (and flushFilters() clears matching filters
     *     outright when a snoop lands).
     */
    struct RefFilter
    {
        CacheLine *line = nullptr;
        Addr lineAddr = invalidAddr;
        std::size_t bank = 0;
        std::uint64_t fillEpoch = 0;
    };

    /**
     * Each port keeps a handful of armed lines, round-robin
     * replaced — workloads ping-pong between a few hot lines (an
     * object's fields, a stack slot, a lock word) and a single
     * entry would thrash. Entries are independent: each one's
     * validity is re-proven at use by the epoch + state checks.
     */
    struct FilterSet
    {
        static constexpr int entries = 4;
        RefFilter entry[entries];
        unsigned victim = 0;
    };

    /** Arm an entry of @p set after a plain hit on @p line. */
    void
    armFilter(FilterSet &set, CacheLine *line, Addr lineAddr)
    {
        RefFilter *slot = &set.entry[set.victim];
        for (RefFilter &f : set.entry) {
            if (f.lineAddr == lineAddr) {
                slot = &f;  // refresh in place, keep the others
                break;
            }
        }
        if (slot == &set.entry[set.victim])
            set.victim = (set.victim + 1) % FilterSet::entries;
        slot->line = line;
        slot->lineAddr = lineAddr;
        slot->bank = (std::size_t)bankOf(lineAddr);
        slot->fillEpoch = _fillEpoch;
    }

    /** Drop every filter armed on @p lineAddr (snoop landed). */
    void
    flushFilters(Addr lineAddr)
    {
        for (FilterSet &set : _filters) {
            for (RefFilter &f : set.entry) {
                if (f.lineAddr == lineAddr)
                    f = RefFilter{};
            }
        }
    }

    ClusterId _cluster;
    SccParams _params;
    Interconnect *_bus;
    CoherenceObserver *_observer = nullptr;
    obs::Recorder *_recorder = nullptr;
    TagArray _tags;
    std::vector<Cycle> _bankNextFree;

    /** In-flight fills: line address → completion cycle. */
    MshrTable _mshrs;

    /** Per-port reference filters (index = localCpu). */
    std::vector<FilterSet> _filters;

    /** Bumped by every handleMiss (fill/evict/MSHR-allocate). */
    std::uint64_t _fillEpoch = 0;

    /**
     * Security domain of each local processor (localCpu % domains;
     * all zero when isolation is off).
     */
    std::vector<int> _domainByPort;

    /** Fills since the last rand-isolation rekey flush. */
    std::uint64_t _fillsSinceRekey = 0;

    stats::Group statsGroup;

  public:
    /// @name Statistics
    /// @{
    stats::Scalar readHits;
    stats::Scalar readMisses;
    stats::Scalar writeHits;
    stats::Scalar writeMisses;
    stats::Scalar upgradeHits;    //!< write hits needing BusUpgr
    stats::Scalar mergedMisses;   //!< misses merged into an MSHR
    stats::Scalar writeBacks;
    stats::Scalar invalidationsReceived;
    stats::Scalar updatesReceived;
    stats::Scalar updatesBroadcast;
    stats::Scalar interventionsSupplied;
    stats::Scalar bankConflictCycles;
    stats::Scalar missStallCycles;
    stats::Scalar rekeyFlushes;   //!< rand-isolation epoch turns
    /// @}
};

} // namespace scmp

#endif // SCMP_MEM_SCC_HH
