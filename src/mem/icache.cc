#include "icache.hh"

#include "sim/logging.hh"

namespace scmp
{

ICache::ICache(stats::Group *parent, const std::string &name,
               ClusterId cluster, const ICacheParams &params,
               Interconnect *bus)
    : _params(params), _cluster(cluster), _bus(bus),
      _tags(params.sizeBytes, params.lineBytes, 1),
      statsGroup(parent, name),
      fetches(&statsGroup, "fetches", "instruction line lookups"),
      misses(&statsGroup, "misses", "instruction cache misses"),
      stallCycles(&statsGroup, "stallCycles",
                  "fetch stall cycles added to execution")
{
}

void
ICache::setStream(Addr codeBase, std::uint64_t footprintBytes)
{
    _codeBase = codeBase;
    _footprint = footprintBytes;
    // Re-seed deterministically from the code segment so a given
    // process replays the same control flow on every processor it
    // migrates to.
    _rng.reseed(codeBase ^ footprintBytes);
    _loopBase = 0;
    _loopBytes = 0;
    _loopOffset = 0;
    _iterationsLeft = 0;
}

void
ICache::newEpisode()
{
    // Real programs execute as a sequence of loop episodes: a
    // loop body of a few hundred bytes to a few KB, iterated many
    // times, then control moves elsewhere in the text.
    std::uint64_t line = _params.lineBytes;
    std::uint64_t span = roundedFootprint();
    _loopBytes = 256 + (std::uint64_t)_rng.exponential(1.0 / 1536.0);
    if (_loopBytes > span)
        _loopBytes = span;
    _loopBytes = (_loopBytes + line - 1) / line * line;
    std::uint64_t maxBase = span - _loopBytes;
    _loopBase = maxBase ? (_rng.range(maxBase / line)) * line : 0;
    _loopOffset = 0;
    _iterationsLeft = 1 + (std::uint64_t)_rng.exponential(1.0 / 24.0);
}

Cycle
ICache::fetch(std::uint32_t instrs, Cycle now)
{
    if (!_params.enabled || _footprint == 0)
        return 0;

    std::uint64_t bytes =
        (std::uint64_t)instrs * _params.bytesPerInstr;
    std::uint64_t line = _params.lineBytes;
    Cycle stall = 0;

    while (bytes > 0) {
        if (_iterationsLeft == 0)
            newEpisode();

        // Fetch up to the end of the current loop pass.
        std::uint64_t chunk =
            std::min(bytes, _loopBytes - _loopOffset);
        std::uint64_t firstLine = (_loopBase + _loopOffset) / line;
        std::uint64_t lastLine =
            (_loopBase + _loopOffset + chunk - 1) / line;
        for (std::uint64_t l = firstLine; l <= lastLine; ++l) {
            Addr addr = _codeBase + l * line;
            ++fetches;
            if (!_tags.lookup(addr)) {
                ++misses;
                CacheLine *victim = _tags.victim(addr);
                Cycle ready = now + stall;
                if (_bus) {
                    ready = _bus->transaction(
                        _cluster, BusOp::Read, addr, now + stall);
                }
                stall += ready - (now + stall);
                _tags.fill(victim, addr, CoherenceState::Shared);
            }
        }
        _loopOffset += chunk;
        bytes -= chunk;
        if (_loopOffset >= _loopBytes) {
            _loopOffset = 0;
            --_iterationsLeft;
        }
    }
    stallCycles += stall;
    return stall;
}

std::uint64_t
ICache::roundedFootprint() const
{
    // Keep the wrap point line-aligned so the walk is periodic.
    std::uint64_t line = _params.lineBytes;
    std::uint64_t rounded = (_footprint + line - 1) / line * line;
    return rounded ? rounded : line;
}

} // namespace scmp
