/**
 * @file
 * Observation interface for the coherence correctness tooling.
 *
 * The bus and the SCCs emit a narrow stream of protocol events when
 * an observer is attached (src/check/ attaches one under --check).
 * Each event reports a MECHANICAL action the hardware performed —
 * "this cache installed that line", "this copy was invalidated" —
 * never a protocol DECISION, so an observer can maintain reference
 * state (golden memory values, shadow copies) independently of the
 * protocol logic under test: a cache that forgets to invalidate
 * simply never emits the event, and its stale shadow copy is caught
 * on the next verified load.
 *
 * With no observer attached every emission site is one untaken
 * branch; checking is zero cost when off.
 */

#ifndef SCMP_MEM_COHERENCE_OBSERVER_HH
#define SCMP_MEM_COHERENCE_OBSERVER_HH

#include "mem/cache_params.hh"
#include "sim/types.hh"

namespace scmp
{

/** Receiver for protocol events from the bus and the caches. */
class CoherenceObserver
{
  public:
    virtual ~CoherenceObserver() = default;

    /// @name Machine-level: one processor data reference.
    /// @{
    /** Before the serving cache handles the reference. */
    virtual void onCpuAccessStart(CpuId cpu, int cacheIdx,
                                  RefType type, Addr addr) = 0;
    /** After the reference completes (tags already updated). */
    virtual void onCpuAccessEnd(CpuId cpu, int cacheIdx,
                                RefType type, Addr addr) = 0;
    /// @}

    /// @name Cache-level: tag/state transitions in one SCC.
    /// @{
    /** A victim line left the cache. @p dirty = it was Modified. */
    virtual void onEvict(ClusterId cache, Addr lineAddr,
                         bool dirty) = 0;
    /** A line was installed with the given fill state. */
    virtual void onFill(ClusterId cache, Addr lineAddr,
                        CoherenceState state) = 0;
    /** A Modified copy was pushed back to memory (snoop flush or
     *  write-back); the copy itself may live on. */
    virtual void onDirtyFlush(ClusterId cache, Addr lineAddr) = 0;
    /** A snoop dropped this cache's copy. */
    virtual void onInvalidate(ClusterId cache, Addr lineAddr) = 0;
    /** A write-update broadcast was absorbed into a live copy. */
    virtual void onUpdateAbsorbed(ClusterId cache,
                                  Addr lineAddr) = 0;
    /// @}

    /**
     * Bus-level: a transaction finished snooping every cache.
     * Fires after all cache-level events of the transaction, before
     * the requester acts on the result — the serialization point at
     * which global coherence invariants must hold.
     */
    virtual void onBusTransaction(ClusterId source, BusOp op,
                                  Addr lineAddr, Cycle grant) = 0;

    /// @name Store-buffer events (--consistency=weak only).
    ///
    /// Under weak ordering a store's retirement (into the FIFO) and
    /// its global performance (the drain onto the cache) are
    /// separate moments; these hooks let the oracle assign the write
    /// its sequence number in PROGRAM order at retirement while the
    /// commit happens later, in drain order. Default no-ops so the
    /// machinery costs nothing when no checker is attached.
    /// @{
    /** A store retired into @p cpu's buffer.
     *  @return the write's oracle sequence number (0 unchecked). */
    virtual std::uint64_t
    onStoreBuffered(CpuId cpu, int cacheIdx, Addr addr)
    {
        (void)cpu;
        (void)cacheIdx;
        (void)addr;
        return 0;
    }

    /** A buffered store begins draining through its cache. */
    virtual void
    onStoreDrainStart(CpuId cpu, int cacheIdx, Addr addr,
                      std::uint64_t seq)
    {
        (void)cpu;
        (void)cacheIdx;
        (void)addr;
        (void)seq;
    }

    /** The drain completed (tags updated, write globally done). */
    virtual void
    onStoreDrainEnd(CpuId cpu, int cacheIdx, Addr addr)
    {
        (void)cpu;
        (void)cacheIdx;
        (void)addr;
    }

    /** A load was served by read bypass from @p cpu's buffer. */
    virtual void
    onLoadForwarded(CpuId cpu, Addr addr)
    {
        (void)cpu;
        (void)addr;
    }

    /** A full fence completed on @p cpu — its buffer MUST be empty. */
    virtual void
    onFence(CpuId cpu)
    {
        (void)cpu;
    }
    /// @}

    /// @name Transactional-memory events (--tm={eager,lazy} only).
    ///
    /// The manager publishes speculative writes as ordinary
    /// bracketed cache accesses at commit; these hooks tell the
    /// oracle which accesses belong to a transaction so it can
    /// enforce atomicity (every speculative word published at
    /// commit, none before, none after an abort) and isolation
    /// (the read set still matches golden memory when the commit
    /// publishes). Default no-ops so unchecked runs pay nothing.
    /// @{
    /** @p cpu opened a transaction. */
    virtual void
    onTmBegin(CpuId cpu)
    {
        (void)cpu;
    }

    /** @p cpu speculatively wrote @p wordAddr (no memory change). */
    virtual void
    onTmStore(CpuId cpu, Addr wordAddr)
    {
        (void)cpu;
        (void)wordAddr;
    }

    /** @p cpu's commit begins; publication writes follow. */
    virtual void
    onTmCommitStart(CpuId cpu)
    {
        (void)cpu;
    }

    /** @p cpu's commit finished publishing its write set. */
    virtual void
    onTmCommitEnd(CpuId cpu)
    {
        (void)cpu;
    }

    /** @p cpu's transaction aborted — nothing may have published. */
    virtual void
    onTmAbort(CpuId cpu)
    {
        (void)cpu;
    }
    /// @}
};

} // namespace scmp

#endif // SCMP_MEM_COHERENCE_OBSERVER_HH
