/**
 * @file
 * Per-processor instruction cache with a synthetic fetch stream.
 *
 * The paper gives each processor a private 16 KB instruction cache.
 * Our direct-execution workloads have no real instruction trace, so
 * each processor walks a synthetic PC through its process's code
 * segment as a sequence of loop episodes: a loop body of a few
 * hundred bytes to a few KB runs for many iterations, then control
 * moves elsewhere in the text. Small-text programs (compress) fit
 * entirely; large-text programs (gcc, spice) miss on every episode
 * change, and context switches between processes with different
 * segments cause the cold restarts the multiprogramming study
 * measures.
 */

#ifndef SCMP_MEM_ICACHE_HH
#define SCMP_MEM_ICACHE_HH

#include "mem/bus.hh"
#include "mem/cache_params.hh"
#include "mem/tag_array.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace scmp
{

/** One processor's instruction cache plus its synthetic PC walk. */
class ICache
{
  public:
    /**
     * @param parent  Statistics parent.
     * @param name    Group name (e.g. "icache0").
     * @param cluster Cluster id (bus source for miss fetches).
     * @param params  Geometry.
     * @param bus     Bus used for miss fills (may be null when the
     *                cache is disabled).
     */
    ICache(stats::Group *parent, const std::string &name,
           ClusterId cluster, const ICacheParams &params,
           Interconnect *bus);

    /**
     * Point the synthetic PC at a (new) code segment. Called at
     * process start and on every context switch.
     */
    void setStream(Addr codeBase, std::uint64_t footprintBytes);

    /**
     * Fetch @p instrs instructions' worth of code.
     * @param now Current cycle.
     * @return extra stall cycles caused by instruction misses.
     */
    Cycle fetch(std::uint32_t instrs, Cycle now);

    double
    missRate() const
    {
        double total = fetches.value();
        return total > 0 ? misses.value() / total : 0.0;
    }

    const ICacheParams &params() const { return _params; }

  private:
    /** Line-aligned length of the process's text segment. */
    std::uint64_t roundedFootprint() const;

    /** Start the next loop episode of the synthetic PC walk. */
    void newEpisode();

    ICacheParams _params;
    ClusterId _cluster;
    Interconnect *_bus;
    TagArray _tags;
    Addr _codeBase = 0;
    std::uint64_t _footprint = 0;
    Rng _rng;
    std::uint64_t _loopBase = 0;
    std::uint64_t _loopBytes = 0;
    std::uint64_t _loopOffset = 0;
    std::uint64_t _iterationsLeft = 0;

    stats::Group statsGroup;

  public:
    /// @name Statistics
    /// @{
    stats::Scalar fetches;  //!< line fetch lookups
    stats::Scalar misses;
    stats::Scalar stallCycles;
    /// @}
};

} // namespace scmp

#endif // SCMP_MEM_ICACHE_HH
