/**
 * @file
 * A set-associative tag/state array with LRU replacement.
 *
 * Holds no data payload — workload data lives host-side in the
 * arena; the simulator tracks only tags and coherence state, which
 * is all the paper's timing model needs.
 *
 * The array optionally enforces a security-isolation placement
 * policy (src/sec): way partitioning, set coloring or randomized
 * indexing per security domain. With the default SecParams
 * (IsolationMode::None) every method follows the exact pre-axis
 * code path, so the paper's machine stays bit-identical.
 */

#ifndef SCMP_MEM_TAG_ARRAY_HH
#define SCMP_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/cache_params.hh"
#include "sec/sec_params.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace scmp
{

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr tag = invalidAddr;
    CoherenceState state = CoherenceState::Invalid;
    std::uint64_t lruStamp = 0;

    /** Security domain that filled the line (0 when not isolated). */
    std::uint16_t domain = 0;

    bool valid() const { return state != CoherenceState::Invalid; }
};

/** Tag store for one cache (SCC or instruction cache). */
class TagArray
{
  public:
    /**
     * @param sizeBytes Total capacity; must be a power of two.
     * @param lineBytes Line size; must be a power of two.
     * @param assoc     Ways per set; must divide the set count out.
     * @param sec       Isolation policy; default none (bit-identical
     *                  to the pre-axis array).
     */
    TagArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
             std::uint32_t assoc, const SecParams &sec = SecParams{});

    /** Line-aligned address of @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & _lineMask;
    }

    /** Raw (un-isolated) set index for an address. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> _lineShift) & _setMask;
    }

    /**
     * Set index @p domain's fills of @p addr land in. Equal to
     * setIndex() under none and waypart; the domain's colored
     * region under color; the domain's keyed hash under rand.
     */
    std::uint64_t setIndexFor(Addr addr, int domain) const;

    /**
     * Look up a line.
     * @return pointer to the line, or nullptr on miss. Updates LRU
     *         on hit.
     */
    CacheLine *lookup(Addr addr);

    /**
     * Look up without touching LRU state (snoops, tests). Domain
     * agnostic: under color/rand every domain's candidate set is
     * probed, so a snoop or a cross-domain sharer always finds the
     * single resident copy — isolation constrains placement, never
     * coherence.
     */
    CacheLine *probe(Addr addr);
    const CacheLine *probe(Addr addr) const;

    /**
     * Re-stamp a line already known to be resident (the reference
     * fast path). Equivalent to the LRU side effect of lookup().
     */
    void
    touch(CacheLine *line)
    {
        line->lruStamp = ++_stampCounter;
    }

    /**
     * Choose the victim way for @p domain's fill of @p addr
     * (invalid first, then LRU). Under waypart only the domain's
     * own ways are eligible; under color/rand the search covers the
     * domain's own candidate set. Does not modify the line.
     */
    CacheLine *victim(Addr addr, int domain = 0);

    /**
     * Install @p addr over @p line (which must belong to the right
     * set) with the given state; updates LRU and records the
     * filling domain.
     */
    void fill(CacheLine *line, Addr addr, CoherenceState state,
              int domain = 0);

    /** Invalidate a line if present. @return true if it was valid. */
    bool invalidate(Addr addr);

    /** Number of valid lines (tests / occupancy stats). */
    std::uint64_t validLines() const;

    /** Valid lines resident in @p set (per-set occupancy obs). */
    std::uint64_t setOccupancy(std::uint64_t set) const;

    std::uint64_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _assoc; }

    /** High-water LRU stamp (invariant: no line stamp exceeds it). */
    std::uint64_t lruStampCounter() const { return _stampCounter; }
    std::uint32_t lineBytes() const { return _lineBytes; }
    std::uint64_t sizeBytes() const { return _sizeBytes; }

    /// @name Isolation policy (src/sec).
    /// @{
    bool isolated() const
    {
        return _sec.mode != IsolationMode::None;
    }
    const SecParams &secParams() const { return _sec; }

    /**
     * The partition invariant for one resident line: does the line
     * sit where its recorded domain's policy says it may? The
     * coherence checker walks this over every valid line.
     */
    bool placementValid(const CacheLine &line, std::uint64_t set,
                        std::uint32_t way) const;

    /**
     * Rand only: advance the rekey epoch and re-derive every
     * domain's index key. The caller (the SCC) must flush the
     * array around this — resident lines hash to their old sets.
     */
    void rekey();
    std::uint64_t rekeyEpoch() const { return _rekeyEpoch; }
    /// @}

    /** Iterate every line (tests, invariant checks). */
    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        for (const auto &line : _lines)
            fn(line);
    }

    /** Mutable variant (the SCC's rekey flush walks with it). */
    template <typename Fn>
    void
    forEachLine(Fn fn)
    {
        for (auto &line : _lines)
            fn(line);
    }

  private:
    /** Re-derive the per-domain rand index keys for this epoch. */
    void deriveKeys();

    std::uint64_t _sizeBytes;
    std::uint32_t _lineBytes;
    std::uint32_t _assoc;
    SecParams _sec;
    int _lineShift;
    std::uint64_t _numSets;
    Addr _lineMask;          //!< ~(lineBytes - 1), precomputed
    std::uint64_t _setMask;  //!< numSets - 1, precomputed
    std::uint64_t _stampCounter = 0;
    std::vector<CacheLine> _lines;

    /// @name Isolation geometry (meaningful only when isolated).
    /// @{
    std::uint64_t _setsPerDomain = 0;  //!< color region size
    std::uint32_t _waysPerDomain = 0;  //!< waypart slice size
    std::uint64_t _rekeyEpoch = 0;
    std::vector<std::uint64_t> _domainKeys;  //!< rand index keys
    /// @}

    /**
     * Most-recently-hit way per set: probe() checks it before
     * scanning the set, so the common repeat hit is one tag
     * compare. Pure search-order hint — it never changes which
     * line a probe returns or which way victim() picks, so timing
     * and victim selection are bit-identical with or without it.
     */
    mutable std::vector<std::uint32_t> _mruWay;
};

} // namespace scmp

#endif // SCMP_MEM_TAG_ARRAY_HH
