/**
 * @file
 * A set-associative tag/state array with LRU replacement.
 *
 * Holds no data payload — workload data lives host-side in the
 * arena; the simulator tracks only tags and coherence state, which
 * is all the paper's timing model needs.
 */

#ifndef SCMP_MEM_TAG_ARRAY_HH
#define SCMP_MEM_TAG_ARRAY_HH

#include <cstdint>
#include <vector>

#include "mem/cache_params.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace scmp
{

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr tag = invalidAddr;
    CoherenceState state = CoherenceState::Invalid;
    std::uint64_t lruStamp = 0;

    bool valid() const { return state != CoherenceState::Invalid; }
};

/** Tag store for one cache (SCC or instruction cache). */
class TagArray
{
  public:
    /**
     * @param sizeBytes Total capacity; must be a power of two.
     * @param lineBytes Line size; must be a power of two.
     * @param assoc     Ways per set; must divide the set count out.
     */
    TagArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
             std::uint32_t assoc);

    /** Line-aligned address of @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & _lineMask;
    }

    /** Set index for an address. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr >> _lineShift) & _setMask;
    }

    /**
     * Look up a line.
     * @return pointer to the line, or nullptr on miss. Updates LRU
     *         on hit.
     */
    CacheLine *lookup(Addr addr);

    /** Look up without touching LRU state (snoops, tests). */
    CacheLine *probe(Addr addr);
    const CacheLine *probe(Addr addr) const;

    /**
     * Re-stamp a line already known to be resident (the reference
     * fast path). Equivalent to the LRU side effect of lookup().
     */
    void
    touch(CacheLine *line)
    {
        line->lruStamp = ++_stampCounter;
    }

    /**
     * Choose the victim way in @p addr's set (invalid first, then
     * LRU). Does not modify the line.
     */
    CacheLine *victim(Addr addr);

    /**
     * Install @p addr over @p line (which must belong to the right
     * set) with the given state; updates LRU.
     */
    void fill(CacheLine *line, Addr addr, CoherenceState state);

    /** Invalidate a line if present. @return true if it was valid. */
    bool invalidate(Addr addr);

    /** Number of valid lines (tests / occupancy stats). */
    std::uint64_t validLines() const;

    std::uint64_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _assoc; }

    /** High-water LRU stamp (invariant: no line stamp exceeds it). */
    std::uint64_t lruStampCounter() const { return _stampCounter; }
    std::uint32_t lineBytes() const { return _lineBytes; }
    std::uint64_t sizeBytes() const { return _sizeBytes; }

    /** Iterate every line (tests, invariant checks). */
    template <typename Fn>
    void
    forEachLine(Fn fn) const
    {
        for (const auto &line : _lines)
            fn(line);
    }

  private:
    std::uint64_t _sizeBytes;
    std::uint32_t _lineBytes;
    std::uint32_t _assoc;
    int _lineShift;
    std::uint64_t _numSets;
    Addr _lineMask;          //!< ~(lineBytes - 1), precomputed
    std::uint64_t _setMask;  //!< numSets - 1, precomputed
    std::uint64_t _stampCounter = 0;
    std::vector<CacheLine> _lines;

    /**
     * Most-recently-hit way per set: probe() checks it before
     * scanning the set, so the common repeat hit is one tag
     * compare. Pure search-order hint — it never changes which
     * line a probe returns or which way victim() picks, so timing
     * and victim selection are bit-identical with or without it.
     */
    mutable std::vector<std::uint32_t> _mruWay;
};

} // namespace scmp

#endif // SCMP_MEM_TAG_ARRAY_HH
