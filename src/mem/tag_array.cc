#include "tag_array.hh"

namespace scmp
{

TagArray::TagArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
                   std::uint32_t assoc)
    : _sizeBytes(sizeBytes), _lineBytes(lineBytes), _assoc(assoc)
{
    fatal_if(!isPowerOf2(sizeBytes), "cache size must be 2^n bytes");
    fatal_if(!isPowerOf2(lineBytes), "line size must be 2^n bytes");
    fatal_if(assoc == 0, "associativity must be at least 1");
    fatal_if(sizeBytes % ((std::uint64_t)lineBytes * assoc) != 0,
             "cache size not divisible by way size");
    _lineShift = floorLog2(lineBytes);
    _numSets = sizeBytes / lineBytes / assoc;
    fatal_if(!isPowerOf2(_numSets), "set count must be a power of 2");
    _lineMask = ~(Addr)(lineBytes - 1);
    _setMask = _numSets - 1;
    _lines.resize(_numSets * assoc);
    _mruWay.assign(_numSets, 0);
}

CacheLine *
TagArray::lookup(Addr addr)
{
    CacheLine *line = probe(addr);
    if (line)
        line->lruStamp = ++_stampCounter;
    return line;
}

const CacheLine *
TagArray::probe(Addr addr) const
{
    Addr tag = addr & _lineMask;
    std::uint64_t set = setIndex(addr);
    const CacheLine *base = &_lines[set * _assoc];

    // The most-recently-hit way first: on the dominant repeat-hit
    // pattern this is the only compare executed.
    std::uint32_t mru = _mruWay[set];
    if (base[mru].tag == tag && base[mru].valid())
        return &base[mru];

    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (way != mru && base[way].valid() && base[way].tag == tag) {
            _mruWay[set] = way;
            return &base[way];
        }
    }
    return nullptr;
}

CacheLine *
TagArray::probe(Addr addr)
{
    // Reuse the const lookup; only the caller's access widens.
    return const_cast<CacheLine *>(
        static_cast<const TagArray *>(this)->probe(addr));
}

CacheLine *
TagArray::victim(Addr addr)
{
    CacheLine *set = &_lines[setIndex(addr) * _assoc];
    CacheLine *best = &set[0];
    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (!set[way].valid())
            return &set[way];
        if (set[way].lruStamp < best->lruStamp)
            best = &set[way];
    }
    return best;
}

void
TagArray::fill(CacheLine *line, Addr addr, CoherenceState state)
{
    panic_if(state == CoherenceState::Invalid,
             "filling a line with Invalid state");
    line->tag = lineAddr(addr);
    line->state = state;
    line->lruStamp = ++_stampCounter;
    std::uint64_t idx = (std::uint64_t)(line - _lines.data());
    _mruWay[idx / _assoc] = (std::uint32_t)(idx % _assoc);
}

bool
TagArray::invalidate(Addr addr)
{
    CacheLine *line = probe(addr);
    if (!line)
        return false;
    line->state = CoherenceState::Invalid;
    line->tag = invalidAddr;
    // Clear the recency stamp too: an invalid way must not carry a
    // stale stamp into its next tenancy (fill() re-stamps, but any
    // path that inspects stamps between invalidate and refill would
    // otherwise see a recency the way no longer has).
    line->lruStamp = 0;
    return true;
}

std::uint64_t
TagArray::validLines() const
{
    std::uint64_t count = 0;
    for (const auto &line : _lines) {
        if (line.valid())
            ++count;
    }
    return count;
}

} // namespace scmp
