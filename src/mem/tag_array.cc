#include "tag_array.hh"

namespace scmp
{

namespace
{

/** splitmix64 finalizer — the rand-mode index hash. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

TagArray::TagArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
                   std::uint32_t assoc, const SecParams &sec)
    : _sizeBytes(sizeBytes), _lineBytes(lineBytes), _assoc(assoc),
      _sec(sec)
{
    fatal_if(!isPowerOf2(sizeBytes), "cache size must be 2^n bytes");
    fatal_if(!isPowerOf2(lineBytes), "line size must be 2^n bytes");
    fatal_if(assoc == 0, "associativity must be at least 1");
    fatal_if(sizeBytes % ((std::uint64_t)lineBytes * assoc) != 0,
             "cache size not divisible by way size");
    _lineShift = floorLog2(lineBytes);
    _numSets = sizeBytes / lineBytes / assoc;
    fatal_if(!isPowerOf2(_numSets), "set count must be a power of 2");
    _lineMask = ~(Addr)(lineBytes - 1);
    _setMask = _numSets - 1;
    _lines.resize(_numSets * assoc);
    _mruWay.assign(_numSets, 0);

    if (isolated()) {
        fatal_if(_sec.domains < 2,
                 "isolation needs at least two security domains");
        switch (_sec.mode) {
          case IsolationMode::WayPart:
            fatal_if(assoc % (std::uint32_t)_sec.domains != 0,
                     "--isolation=waypart needs the associativity (",
                     assoc, ") divisible by --isolation-domains (",
                     _sec.domains, ")");
            _waysPerDomain = assoc / (std::uint32_t)_sec.domains;
            break;
          case IsolationMode::Color:
            fatal_if(!isPowerOf2((std::uint64_t)_sec.domains) ||
                         (std::uint64_t)_sec.domains > _numSets,
                     "--isolation=color needs a power-of-two "
                     "--isolation-domains dividing the set count (",
                     _numSets, " sets, ", _sec.domains, " domains)");
            _setsPerDomain = _numSets / (std::uint64_t)_sec.domains;
            break;
          case IsolationMode::Rand:
            deriveKeys();
            break;
          case IsolationMode::None:
            break;
        }
    }
}

void
TagArray::deriveKeys()
{
    _domainKeys.assign((std::size_t)_sec.domains, 0);
    for (int d = 0; d < _sec.domains; ++d) {
        _domainKeys[(std::size_t)d] = mix64(
            _sec.key ^ mix64((std::uint64_t)d + 1) ^
            mix64(_rekeyEpoch * 0x51ed270b9ull + 17));
    }
}

void
TagArray::rekey()
{
    ++_rekeyEpoch;
    deriveKeys();
}

std::uint64_t
TagArray::setIndexFor(Addr addr, int domain) const
{
    switch (_sec.mode) {
      case IsolationMode::None:
      case IsolationMode::WayPart:
        return setIndex(addr);
      case IsolationMode::Color:
        return ((addr >> _lineShift) & (_setsPerDomain - 1)) +
               (std::uint64_t)domain * _setsPerDomain;
      case IsolationMode::Rand:
        return mix64((addr >> _lineShift) ^
                     _domainKeys[(std::size_t)domain]) &
               _setMask;
    }
    return setIndex(addr);
}

CacheLine *
TagArray::lookup(Addr addr)
{
    CacheLine *line = probe(addr);
    if (line)
        line->lruStamp = ++_stampCounter;
    return line;
}

const CacheLine *
TagArray::probe(Addr addr) const
{
    Addr tag = addr & _lineMask;

    // Color/rand spread one address over a candidate set per
    // domain; the single resident copy can sit in any of them, so
    // a domain-agnostic probe (snoops, coherence, sharers) scans
    // them all.
    if (isolated() && _sec.mode != IsolationMode::WayPart) {
        for (int d = 0; d < _sec.domains; ++d) {
            const CacheLine *base =
                &_lines[setIndexFor(addr, d) * _assoc];
            for (std::uint32_t way = 0; way < _assoc; ++way) {
                if (base[way].valid() && base[way].tag == tag)
                    return &base[way];
            }
        }
        return nullptr;
    }

    std::uint64_t set = setIndex(addr);
    const CacheLine *base = &_lines[set * _assoc];

    // The most-recently-hit way first: on the dominant repeat-hit
    // pattern this is the only compare executed.
    std::uint32_t mru = _mruWay[set];
    if (base[mru].tag == tag && base[mru].valid())
        return &base[mru];

    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (way != mru && base[way].valid() && base[way].tag == tag) {
            _mruWay[set] = way;
            return &base[way];
        }
    }
    return nullptr;
}

CacheLine *
TagArray::probe(Addr addr)
{
    // Reuse the const lookup; only the caller's access widens.
    return const_cast<CacheLine *>(
        static_cast<const TagArray *>(this)->probe(addr));
}

CacheLine *
TagArray::victim(Addr addr, int domain)
{
    std::uint64_t setIdx = setIndexFor(addr, domain);
    std::uint32_t wayBegin = 0;
    std::uint32_t wayEnd = _assoc;
    if (_sec.mode == IsolationMode::WayPart) {
        wayBegin = (std::uint32_t)domain * _waysPerDomain;
        wayEnd = wayBegin + _waysPerDomain;
    }
#ifdef SCMP_SEC_MUTATION
    // Test-only injected isolation bug (sec_mutation_death): the
    // replacement search ignores the partition and roams the whole
    // raw-indexed set, so one domain's fill can evict — and occupy —
    // another domain's ways. The checker's partition-invariant walk
    // must catch it.
    setIdx = setIndex(addr);
    wayBegin = 0;
    wayEnd = _assoc;
#endif
    CacheLine *set = &_lines[setIdx * _assoc];
    CacheLine *best = &set[wayBegin];
    for (std::uint32_t way = wayBegin; way < wayEnd; ++way) {
        if (!set[way].valid())
            return &set[way];
        if (set[way].lruStamp < best->lruStamp)
            best = &set[way];
    }
    return best;
}

void
TagArray::fill(CacheLine *line, Addr addr, CoherenceState state,
               int domain)
{
    panic_if(state == CoherenceState::Invalid,
             "filling a line with Invalid state");
    line->tag = lineAddr(addr);
    line->state = state;
    line->lruStamp = ++_stampCounter;
    line->domain = (std::uint16_t)domain;
    std::uint64_t idx = (std::uint64_t)(line - _lines.data());
    _mruWay[idx / _assoc] = (std::uint32_t)(idx % _assoc);
}

bool
TagArray::invalidate(Addr addr)
{
    CacheLine *line = probe(addr);
    if (!line)
        return false;
    line->state = CoherenceState::Invalid;
    line->tag = invalidAddr;
    // Clear the recency stamp too: an invalid way must not carry a
    // stale stamp into its next tenancy (fill() re-stamps, but any
    // path that inspects stamps between invalidate and refill would
    // otherwise see a recency the way no longer has).
    line->lruStamp = 0;
    line->domain = 0;
    return true;
}

bool
TagArray::placementValid(const CacheLine &line, std::uint64_t set,
                         std::uint32_t way) const
{
    switch (_sec.mode) {
      case IsolationMode::None:
        return setIndex(line.tag) == set;
      case IsolationMode::WayPart:
        return setIndex(line.tag) == set &&
               line.domain < _sec.domains &&
               way / _waysPerDomain == line.domain;
      case IsolationMode::Color:
      case IsolationMode::Rand:
        return line.domain < _sec.domains &&
               setIndexFor(line.tag, line.domain) == set;
    }
    return false;
}

std::uint64_t
TagArray::setOccupancy(std::uint64_t set) const
{
    panic_if(set >= _numSets, "set ", set, " out of range");
    std::uint64_t count = 0;
    const CacheLine *base = &_lines[set * _assoc];
    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (base[way].valid())
            ++count;
    }
    return count;
}

std::uint64_t
TagArray::validLines() const
{
    std::uint64_t count = 0;
    for (const auto &line : _lines) {
        if (line.valid())
            ++count;
    }
    return count;
}

} // namespace scmp
