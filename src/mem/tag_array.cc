#include "tag_array.hh"

namespace scmp
{

TagArray::TagArray(std::uint64_t sizeBytes, std::uint32_t lineBytes,
                   std::uint32_t assoc)
    : _sizeBytes(sizeBytes), _lineBytes(lineBytes), _assoc(assoc)
{
    fatal_if(!isPowerOf2(sizeBytes), "cache size must be 2^n bytes");
    fatal_if(!isPowerOf2(lineBytes), "line size must be 2^n bytes");
    fatal_if(assoc == 0, "associativity must be at least 1");
    fatal_if(sizeBytes % ((std::uint64_t)lineBytes * assoc) != 0,
             "cache size not divisible by way size");
    _lineShift = floorLog2(lineBytes);
    _numSets = sizeBytes / lineBytes / assoc;
    fatal_if(!isPowerOf2(_numSets), "set count must be a power of 2");
    _lines.resize(_numSets * assoc);
}

CacheLine *
TagArray::lookup(Addr addr)
{
    CacheLine *line = probe(addr);
    if (line)
        line->lruStamp = ++_stampCounter;
    return line;
}

const CacheLine *
TagArray::probe(Addr addr) const
{
    Addr tag = lineAddr(addr);
    const CacheLine *set = &_lines[setIndex(addr) * _assoc];
    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (set[way].valid() && set[way].tag == tag)
            return &set[way];
    }
    return nullptr;
}

CacheLine *
TagArray::probe(Addr addr)
{
    // Reuse the const lookup; only the caller's access widens.
    return const_cast<CacheLine *>(
        static_cast<const TagArray *>(this)->probe(addr));
}

CacheLine *
TagArray::victim(Addr addr)
{
    CacheLine *set = &_lines[setIndex(addr) * _assoc];
    CacheLine *best = &set[0];
    for (std::uint32_t way = 0; way < _assoc; ++way) {
        if (!set[way].valid())
            return &set[way];
        if (set[way].lruStamp < best->lruStamp)
            best = &set[way];
    }
    return best;
}

void
TagArray::fill(CacheLine *line, Addr addr, CoherenceState state)
{
    panic_if(state == CoherenceState::Invalid,
             "filling a line with Invalid state");
    line->tag = lineAddr(addr);
    line->state = state;
    line->lruStamp = ++_stampCounter;
}

bool
TagArray::invalidate(Addr addr)
{
    CacheLine *line = probe(addr);
    if (!line)
        return false;
    line->state = CoherenceState::Invalid;
    line->tag = invalidAddr;
    return true;
}

std::uint64_t
TagArray::validLines() const
{
    std::uint64_t count = 0;
    for (const auto &line : _lines) {
        if (line.valid())
            ++count;
    }
    return count;
}

} // namespace scmp
