/**
 * @file
 * Per-CPU store buffers — the weak-ordering half of the
 * `--consistency` axis.
 *
 * Under sequential consistency (the default, and the contract every
 * golden fixture pins) a processor stalls on every write until the
 * memory system has globally performed it. A store buffer breaks
 * that coupling: the write retires into a bounded per-CPU FIFO in
 * one cycle and drains onto the cache/interconnect lazily, off the
 * processor's critical path. Loads probe the FIFO youngest-first
 * and forward a pending value for their own word (read bypass);
 * everything else still goes to the cache.
 *
 * Ordering contract (weak ordering, Dubois/Scheurich/Briggs): the
 * FIFO preserves each processor's own program store order on the
 * interconnect, and a full fence — issued by the engine at the ANL
 * LOCK/UNLOCK/BARRIER entry points, the workloads' only
 * synchronization surface — drains the buffer completely before the
 * synchronization access issues. Between fences, stores from
 * different processors may become visible in any interleaving; the
 * order-tolerant oracle in src/check accepts exactly that latitude
 * and nothing more.
 *
 * Timing model: each drain is a normal write access through the
 * owning processor's SCC port — drains contend for banks and the
 * bus like any other reference, they are just asynchronous to the
 * processor. The background drain is lazy and serialized (one
 * transaction in flight, entries chained on `_drainFree`), runs
 * after the owner's loads — the processor has priority for its own
 * cache port — and is stamped with the cycle it would have issued
 * at; the fabrics already order concurrent requesters by
 * `max(now, nextFree)`, so a drain carrying an older timestamp than
 * a reference another processor already issued is serviced exactly
 * like any out-of-order arrival from the engine-free fuzz driver.
 * Under pressure the buffer streams instead: a fence, or a store
 * arriving at a full FIFO, pushes entries onto the interconnect
 * back-to-back and lets the fabric arbitration serialize them, so
 * a flush costs one latency plus K transfer occupancies rather
 * than K full latencies.
 */

#ifndef SCMP_MEM_STORE_BUFFER_HH
#define SCMP_MEM_STORE_BUFFER_HH

#include <cstdint>
#include <deque>
#include <string>

#include "mem/coherence_observer.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace scmp
{

class SharedClusterCache;

/** Memory consistency model — one axis of the design space. */
enum class ConsistencyModel : std::uint8_t
{
    /** Sequential consistency: every store stalls (the default). */
    Sc,
    /** Weak ordering: buffered stores, fences at sync points. */
    Weak,
};

/** Consistency selection. Inert under Sc (the point key skips it). */
struct ConsistencyParams
{
    ConsistencyModel model = ConsistencyModel::Sc;

    /** Weak only: store-buffer entries per processor. */
    int storeBufferEntries = 8;
};

/// @name Names and parsers for the CLI/design-space axis.
/// @{
const char *consistencyName(ConsistencyModel model);
/** Parse "sc" / "weak"; false on unknown names. */
bool parseConsistency(const std::string &text,
                      ConsistencyModel *out);
/// @}

/** Machine-wide store-buffer statistics (shared by all buffers). */
struct StoreBufferStats
{
    explicit StoreBufferStats(stats::Group *parent);

    stats::Group group;
    stats::Scalar storesBuffered;   //!< stores retired into a FIFO
    stats::Scalar storesDrained;    //!< drains performed on a cache
    stats::Scalar loadsForwarded;   //!< loads served by read bypass
    stats::Scalar fences;           //!< full fences executed
    stats::Scalar drainStallCycles; //!< CPU cycles stalled on full
    stats::Scalar fenceWaitCycles;  //!< CPU cycles waiting at fences
};

/**
 * One processor's bounded FIFO store buffer. Owned by the Machine
 * (one per CPU under --consistency=weak); never constructed under
 * sequential consistency, so the default configuration carries no
 * buffer state at all.
 */
class StoreBuffer
{
  public:
    /**
     * @param cache    The cache the buffer drains into.
     * @param localCpu The owner's port index on that cache.
     * @param cacheIdx The cache's bus index (observer identity).
     * @param cpu      The owning processor (observer identity).
     * @param capacity FIFO entries; full forces a drain stall.
     * @param stats    Machine-wide counters (shared, never null).
     */
    StoreBuffer(SharedClusterCache *cache, int localCpu,
                int cacheIdx, CpuId cpu, int capacity,
                StoreBufferStats *stats);

    /** Attach the correctness observer (null detaches). */
    void setObserver(CoherenceObserver *observer)
    {
        _observer = observer;
    }

    /**
     * Retire a store into the buffer.
     * @return the cycle the processor may continue — @p now unless
     *         a full buffer forced it to wait for the head drain.
     */
    Cycle store(Addr addr, Cycle now);

    /**
     * Read bypass: serve a load from the youngest pending store to
     * the same word, if any. Call drainDue() first.
     * @return true when forwarded (the load is complete at @p now).
     */
    bool forward(Addr addr, Cycle now);

    /** Drain every entry whose issue slot has passed @p now. */
    void drainDue(Cycle now);

    /**
     * Full fence: drain everything, in order.
     * @return the cycle the last drain completed (>= @p now).
     */
    Cycle fence(Cycle now);

    bool empty() const { return _fifo.empty(); }
    int occupancy() const { return (int)_fifo.size(); }
    int capacity() const { return _capacity; }

  private:
    /** A retired store awaiting its turn on the interconnect. */
    struct Entry
    {
        Addr addr;
        Cycle ready;       //!< earliest cycle the drain may issue
        std::uint64_t seq; //!< oracle write sequence (0 unchecked)
    };

    /**
     * Drain the head entry, issuing no earlier than @p floor (and
     * never before the entry retired); returns the issue cycle.
     * Completion is folded into `_drainFree`.
     */
    Cycle drainHead(Cycle floor);

    SharedClusterCache *_cache;
    int _localCpu;
    int _cacheIdx;
    CpuId _cpu;
    int _capacity;
    StoreBufferStats *_stats;
    CoherenceObserver *_observer = nullptr;

    std::deque<Entry> _fifo;
    /** Completion cycle of the most recent drain (serializer). */
    Cycle _drainFree = 0;
};

} // namespace scmp

#endif // SCMP_MEM_STORE_BUFFER_HH
